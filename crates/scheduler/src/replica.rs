//! The replica scheduler: iteration-level batch formation plus memory
//! management (paper §4.5, middle tier).
//!
//! Each call to [`ReplicaScheduler::next_batch`] forms the next iteration's
//! batch according to the configured policy. The paper notes all five
//! policies fit in under 150 lines each on top of the memory-manager API —
//! the same holds here.
//!
//! In-flight bookkeeping: slices handed out in a batch mark their request
//! in-flight until [`ReplicaScheduler::complete_batch`] is called, so with
//! pipeline parallelism several disjoint batches can execute concurrently
//! without double-scheduling a request.
//!
//! # Hot-loop design
//!
//! `next_batch` runs once per simulated iteration — hundreds of thousands of
//! times per run, millions of times per search — so its steady state is
//! allocation-free and scan-free:
//!
//! * The running set is **phase-partitioned** into two intrusive
//!   doubly-linked lists ([`Self::prefilling`] / [`Self::decoding`]) threaded
//!   through `TrackedRequest::{prev, next}` and ordered by an admission
//!   sequence number, which reproduces the seed's single admission-ordered
//!   `running` vector exactly (the differential proptest in
//!   `tests/formation_equivalence.rs` pins this). Admit, finish and preempt
//!   are O(1) unlinks instead of `retain`/`rposition` scans.
//! * Per-call id snapshots go through one reusable scratch buffer; batch
//!   slice vectors are pooled and round-trip through
//!   [`ReplicaScheduler::recycle_batch`].
//! * LightLLM's projected-KV admission bound is a counter maintained on
//!   admit/finish/preempt instead of a per-call re-sum over the running set.

use crate::config::{BatchPolicyKind, SchedulerConfig};
use crate::memory::BlockManager;
use crate::request::{Request, RequestId, RequestPhase, TrackedRequest, NO_REQ};
use crate::slab::IdSlab;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vidur_model::batch::{BatchComposition, RequestSlice};

/// What happened to a request when a batch completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionEvent {
    /// The request.
    pub id: RequestId,
    /// The request's prefill finished in this batch (TTFT point).
    pub prefill_completed: bool,
    /// One output token was produced in this batch.
    pub produced_token: bool,
    /// The request produced its last token and left the replica.
    pub finished: bool,
}

/// Iteration-level replica scheduler with paged KV memory management.
///
/// # Example
///
/// ```
/// use vidur_core::time::SimTime;
/// use vidur_scheduler::{BatchPolicyKind, ReplicaScheduler, Request, SchedulerConfig};
///
/// let config = SchedulerConfig::new(BatchPolicyKind::Vllm, 8);
/// let mut sched = ReplicaScheduler::new(config, 1_000, 16);
/// sched.add_request(Request::new(0, SimTime::ZERO, 100, 5));
/// let batch = sched.next_batch().expect("prefill batch");
/// assert_eq!(batch.total_query_tokens(), 100);
/// let events = sched.complete_batch(&batch);
/// assert!(events[0].prefill_completed);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaScheduler {
    config: SchedulerConfig,
    blocks: BlockManager,
    requests: IdSlab<TrackedRequest>,
    waiting: VecDeque<RequestId>,
    /// Admitted requests still prefilling, in admission order.
    prefilling: PhaseList,
    /// Admitted requests in decode phase, in admission order.
    decoding: PhaseList,
    /// Next admission sequence number (re-assigned on re-admission, so list
    /// order always matches the seed's admission-ordered `running` vector).
    admit_seq: u64,
    /// Σ `spec.total_tokens()` over the running set (LightLLM's projected
    /// KV footprint), maintained incrementally on admit/finish/preempt.
    projected_tokens: u64,
    /// Latched once any request arrives with a non-zero priority class.
    /// While `false` the waiting queue degenerates to plain FIFO and the
    /// preemption victim walk keeps its early-exit fast path, so
    /// single-priority runs pay nothing for the tier machinery.
    priority_in_use: bool,
    /// Per-tenant KV block quotas (index = tenant id; tenants at or beyond
    /// the list are unlimited). Empty = quotas disabled; every quota branch
    /// below is gated on non-emptiness, so the default hot loop is
    /// untouched.
    tenant_quota_blocks: Vec<u64>,
    /// Blocks currently held per tenant on this replica. Maintained only
    /// while quotas are enabled.
    tenant_held_blocks: Vec<u64>,
    /// Requests parked because admitting them would put their tenant over
    /// quota. They re-enter the front of their priority tier once the
    /// tenant's holdings drop (see
    /// [`ReplicaScheduler::apply_quota_parking`]).
    quota_parked: VecDeque<RequestId>,
    /// Per-tenant admission denials (waiting → parked transitions).
    quota_denied: Vec<u64>,
    /// Reusable buffers for the park/unpark pre-pass.
    park_scratch: Vec<RequestId>,
    quota_extra_scratch: Vec<u64>,
    /// Reusable id-snapshot buffer for batch formation passes.
    ids_scratch: Vec<RequestId>,
    /// Recycled slice storage for formed batches (see
    /// [`ReplicaScheduler::recycle_batch`]).
    slice_pool: Vec<Vec<RequestSlice>>,
    preemptions: u64,
    completed: u64,
    /// Set while the replica is gracefully draining: every admission path
    /// (policy admission loops and the prefetched-KV pass) refuses to move
    /// work from waiting into running, so in-flight batches finish and the
    /// queue can be migrated. See [`ReplicaScheduler::drain_queued`].
    admissions_closed: bool,
    /// Admissions that hit the prefix cache (each re-admission after a
    /// preemption that hits again counts again — it genuinely skips work).
    prefix_hit_requests: u64,
    /// Prefill tokens skipped by prefix-cache hits.
    prefix_tokens_saved: u64,
    /// Per-tenant hit counts (index = tenant id; grows on demand).
    tenant_prefix_hits: Vec<u64>,
    /// Per-tenant tokens saved (index = tenant id; grows on demand).
    tenant_prefix_saved: Vec<u64>,
}

/// An intrusive doubly-linked list over [`TrackedRequest`]s, ordered by
/// admission sequence. Links live in the requests themselves, so unlink is
/// O(1) and iteration allocates nothing.
#[derive(Debug, Clone, Copy)]
struct PhaseList {
    head: RequestId,
    tail: RequestId,
    len: usize,
}

impl PhaseList {
    const fn new() -> Self {
        PhaseList {
            head: NO_REQ,
            tail: NO_REQ,
            len: 0,
        }
    }

    /// Inserts `id` keeping the list sorted by `admit_seq`. Appending is the
    /// overwhelmingly common case (new admissions get the highest sequence;
    /// prefill→decode transitions almost always happen in admission order) —
    /// the backward walk only pays when pipeline parallelism lets a
    /// later-admitted request finish its chunked prefill first.
    fn insert_ordered(&mut self, requests: &mut IdSlab<TrackedRequest>, id: RequestId) {
        let seq = requests[&id].admit_seq;
        let mut after = self.tail;
        while after != NO_REQ && requests[&after].admit_seq > seq {
            after = requests[&after].prev;
        }
        let before = if after == NO_REQ {
            self.head
        } else {
            requests[&after].next
        };
        {
            let r = requests.get_mut(&id).expect("tracked");
            r.prev = after;
            r.next = before;
        }
        if after == NO_REQ {
            self.head = id;
        } else {
            requests.get_mut(&after).expect("tracked").next = id;
        }
        if before == NO_REQ {
            self.tail = id;
        } else {
            requests.get_mut(&before).expect("tracked").prev = id;
        }
        self.len += 1;
    }

    /// Unlinks `id` in O(1) via its intrusive links.
    fn unlink(&mut self, requests: &mut IdSlab<TrackedRequest>, id: RequestId) {
        let (prev, next) = {
            let r = &requests[&id];
            (r.prev, r.next)
        };
        if prev == NO_REQ {
            self.head = next;
        } else {
            requests.get_mut(&prev).expect("tracked").next = next;
        }
        if next == NO_REQ {
            self.tail = prev;
        } else {
            requests.get_mut(&next).expect("tracked").prev = prev;
        }
        let r = requests.get_mut(&id).expect("tracked");
        r.prev = NO_REQ;
        r.next = NO_REQ;
        self.len -= 1;
    }
}

impl ReplicaScheduler {
    /// Creates a scheduler over `total_blocks` KV blocks of `block_size`
    /// tokens.
    pub fn new(config: SchedulerConfig, total_blocks: u64, block_size: u32) -> Self {
        ReplicaScheduler {
            blocks: BlockManager::new(total_blocks, block_size, config.watermark_frac),
            config,
            requests: IdSlab::new(),
            waiting: VecDeque::new(),
            prefilling: PhaseList::new(),
            decoding: PhaseList::new(),
            admit_seq: 0,
            projected_tokens: 0,
            priority_in_use: false,
            tenant_quota_blocks: Vec::new(),
            tenant_held_blocks: Vec::new(),
            quota_parked: VecDeque::new(),
            quota_denied: Vec::new(),
            park_scratch: Vec::new(),
            quota_extra_scratch: Vec::new(),
            ids_scratch: Vec::new(),
            slice_pool: Vec::new(),
            preemptions: 0,
            completed: 0,
            admissions_closed: false,
            prefix_hit_requests: 0,
            prefix_tokens_saved: 0,
            tenant_prefix_hits: Vec::new(),
            tenant_prefix_saved: Vec::new(),
        }
    }

    /// Arms the prefix-cache tier on this replica's block manager: requests
    /// sharing a prefix id borrow reference-counted cached prefix blocks,
    /// and a cache hit skips the cached prefill tokens at admission. Leaving
    /// the tier disarmed is byte-identical to a build without it.
    ///
    /// # Panics
    ///
    /// Panics if any request was already added (a mid-run arm would let
    /// earlier admissions miss entries that later releases dereference).
    pub fn arm_prefix_cache(&mut self) {
        assert!(
            self.requests.is_empty(),
            "prefix cache must be armed before any request is added"
        );
        self.blocks.arm_prefix_cache();
    }

    /// Admissions that hit the prefix cache so far.
    pub fn prefix_hit_requests(&self) -> u64 {
        self.prefix_hit_requests
    }

    /// Prefill tokens skipped by prefix-cache hits so far.
    pub fn prefix_tokens_saved(&self) -> u64 {
        self.prefix_tokens_saved
    }

    /// Per-tenant prefix-hit counts (index = tenant id; may be shorter than
    /// the tenant count — missing entries are zero).
    pub fn tenant_prefix_hits(&self) -> &[u64] {
        &self.tenant_prefix_hits
    }

    /// Per-tenant prefill tokens saved (index = tenant id; may be shorter
    /// than the tenant count — missing entries are zero).
    pub fn tenant_prefix_saved(&self) -> &[u64] {
        &self.tenant_prefix_saved
    }

    /// Arms per-tenant KV block quotas: `quota_blocks[t]` caps the blocks
    /// tenant `t` may hold on this replica *through admission* (decode
    /// growth of already-admitted work is never quota-blocked, mirroring
    /// the watermark philosophy). Tenants at or beyond the slice are
    /// unlimited. A request whose solo admission need already exceeds its
    /// tenant's quota is exempt — otherwise the quota could never admit it
    /// and the queue would deadlock.
    ///
    /// # Panics
    ///
    /// Panics if any request was already added: per-tenant holdings are
    /// only tracked while quotas are armed, so arming mid-run would
    /// under-count pre-existing reservations (and underflow when they
    /// release).
    pub fn set_tenant_quotas(&mut self, quota_blocks: &[u64]) {
        assert!(
            self.requests.is_empty(),
            "tenant quotas must be armed before any request is added"
        );
        self.tenant_quota_blocks = quota_blocks.to_vec();
    }

    /// Per-tenant quota denial counts so far (index = tenant id; empty when
    /// quotas are disabled or nothing was denied yet).
    pub fn quota_denied(&self) -> &[u64] {
        &self.quota_denied
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The KV block manager (read access for metrics).
    pub fn blocks(&self) -> &BlockManager {
        &self.blocks
    }

    /// Enqueues an arriving request at the back of its priority tier.
    ///
    /// # Panics
    ///
    /// Panics if a request with the same id was already added.
    pub fn add_request(&mut self, req: Request) {
        let prev = self.requests.insert(req.id, TrackedRequest::new(req));
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.priority_in_use |= req.priority != 0;
        self.enqueue_waiting_back(req.id);
    }

    /// Enqueues a request whose prompt was prefilled on *another* replica
    /// and whose KV-cache has been transferred here (prefill/decode
    /// disaggregation, à la Splitwise/DistServe — paper §2.2). The request
    /// enters the waiting queue already in the decode phase with
    /// `already_decoded` output tokens produced remotely.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids or if `already_decoded` is not in
    /// `1..=decode_tokens` (the prefill node produces the first token).
    pub fn add_remote_prefilled(&mut self, req: Request, already_decoded: u64) {
        assert!(
            already_decoded >= 1 && already_decoded <= req.decode_tokens,
            "remote prefill must have produced 1..=decode_tokens tokens"
        );
        let mut tracked = TrackedRequest::new(req);
        tracked.prefilled = req.prefill_tokens;
        tracked.decoded = already_decoded;
        let prev = self.requests.insert(req.id, tracked);
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.priority_in_use |= req.priority != 0;
        self.enqueue_waiting_back(req.id);
    }

    /// Inserts `id` at the **back of its priority tier** in the waiting
    /// queue: after every request of its class or a more urgent one, before
    /// the first request of a less urgent class. The queue is always sorted
    /// by (priority, enqueue order), so the scan from the back is O(1)
    /// whenever the new request's class is the least urgent present — the
    /// overwhelmingly common case, and always true in single-priority runs.
    fn enqueue_waiting_back(&mut self, id: RequestId) {
        if !self.priority_in_use {
            self.waiting.push_back(id);
            return;
        }
        let p = self.requests[&id].spec.priority;
        let pos = self
            .waiting
            .iter()
            .rposition(|w| self.requests[w].spec.priority <= p)
            .map_or(0, |i| i + 1);
        self.waiting.insert(pos, id);
    }

    /// Inserts `id` at the **front of its priority tier** — the preemption
    /// requeue position: a restarted victim goes back ahead of its own
    /// class but never ahead of a more urgent one.
    fn enqueue_waiting_front(&mut self, id: RequestId) {
        if !self.priority_in_use {
            self.waiting.push_front(id);
            return;
        }
        let p = self.requests[&id].spec.priority;
        let pos = self
            .waiting
            .iter()
            .position(|w| self.requests[w].spec.priority >= p)
            .unwrap_or(self.waiting.len());
        self.waiting.insert(pos, id);
    }

    // ---- per-tenant KV quotas -------------------------------------------

    /// The tenant's quota, or `u64::MAX` when unlimited.
    fn quota_of(&self, tenant: u32) -> u64 {
        self.tenant_quota_blocks
            .get(tenant as usize)
            .copied()
            .unwrap_or(u64::MAX)
    }

    /// Blocks tenant `tenant` currently holds on this replica.
    fn tenant_held(&self, tenant: u32) -> u64 {
        self.tenant_held_blocks
            .get(tenant as usize)
            .copied()
            .unwrap_or(0)
    }

    fn add_tenant_held(&mut self, tenant: u32, delta: i64) {
        let idx = tenant as usize;
        if idx >= self.tenant_held_blocks.len() {
            self.tenant_held_blocks.resize(idx + 1, 0);
        }
        let held = &mut self.tenant_held_blocks[idx];
        *held = held
            .checked_add_signed(delta)
            .expect("tenant block accounting underflow");
    }

    fn bump_quota_denied(&mut self, tenant: u32) {
        let idx = tenant as usize;
        if idx >= self.quota_denied.len() {
            self.quota_denied.resize(idx + 1, 0);
        }
        self.quota_denied[idx] += 1;
    }

    /// Whether admitting `id` with a reservation for `tokens` keeps its
    /// tenant within quota. Solo-infeasible requests (need > quota outright)
    /// are exempt — see [`ReplicaScheduler::set_tenant_quotas`].
    fn within_quota(&self, id: RequestId, tokens: u64) -> bool {
        if self.tenant_quota_blocks.is_empty() {
            return true;
        }
        let tenant = self.requests[&id].spec.tenant;
        let quota = self.quota_of(tenant);
        if quota == u64::MAX {
            return true;
        }
        let need = self.blocks.blocks_for(tokens);
        if need > quota {
            return true;
        }
        self.tenant_held(tenant) + need <= quota
    }

    /// The blocks-worth of tokens the admission path will reserve for `id`:
    /// the transferred KV plus one token for remote-prefilled requests, the
    /// full footprint for FasterTransformer cohorts, the prompt otherwise.
    fn admission_tokens_for(&self, id: RequestId) -> u64 {
        let r = &self.requests[&id];
        if r.remaining_prefill() == 0 {
            return r.cached_tokens() + 1;
        }
        match self.config.policy {
            BatchPolicyKind::FasterTransformer => r.spec.total_tokens(),
            _ => r.spec.prefill_tokens,
        }
    }

    /// The quota unpark pre-pass, run at the top of every `next_batch`
    /// while quotas are armed: parked requests whose tenant is back under
    /// quota rejoin the front of their priority tier (in original order,
    /// bounded by what actually fits so one release never floods the queue
    /// with requests that would immediately re-park).
    fn apply_quota_parking(&mut self) {
        if self.tenant_quota_blocks.is_empty() || self.quota_parked.is_empty() {
            return;
        }
        self.quota_extra_scratch.clear();
        self.quota_extra_scratch
            .resize(self.tenant_quota_blocks.len(), 0);
        let mut unpark = std::mem::take(&mut self.park_scratch);
        unpark.clear();
        for &id in &self.quota_parked {
            let tenant = self.requests[&id].spec.tenant;
            let quota = self.quota_of(tenant);
            let need = self.blocks.blocks_for(self.admission_tokens_for(id));
            let extra = self
                .quota_extra_scratch
                .get(tenant as usize)
                .copied()
                .unwrap_or(0);
            if need > quota || self.tenant_held(tenant) + extra + need <= quota {
                unpark.push(id);
                if let Some(e) = self.quota_extra_scratch.get_mut(tenant as usize) {
                    *e += need;
                }
            }
        }
        for &id in &unpark {
            let pos = self
                .quota_parked
                .iter()
                .position(|&p| p == id)
                .expect("parked");
            self.quota_parked.remove(pos);
        }
        // Front-of-tier inserts prepend within the tier, so walk the batch
        // backwards to restore original order.
        for &id in unpark.iter().rev() {
            self.enqueue_waiting_front(id);
        }
        self.park_scratch = unpark;
    }

    /// Parks consecutive quota-blocked requests at the waiting front so the
    /// next admissible request surfaces — an over-quota tenant's backlog
    /// must not head-of-line-block other tenants. Called by every admission
    /// loop before it reads the front; no-op while quotas are disarmed.
    fn park_quota_blocked_front(&mut self) {
        if self.tenant_quota_blocks.is_empty() {
            return;
        }
        while let Some(&id) = self.waiting.front() {
            if self.within_quota(id, self.admission_tokens_for(id)) {
                break;
            }
            self.waiting.pop_front();
            self.quota_parked.push_back(id);
            let tenant = self.requests[&id].spec.tenant;
            self.bump_quota_denied(tenant);
        }
    }

    /// [`BlockManager::try_reserve`] plus per-tenant holding accounting
    /// (admission path).
    fn reserve_blocks(&mut self, id: RequestId, tokens: u64) -> bool {
        if self.tenant_quota_blocks.is_empty() {
            return self.blocks.try_reserve(id, tokens);
        }
        let before = self.blocks.held_by(id);
        let ok = self.blocks.try_reserve(id, tokens);
        if ok {
            let delta = self.blocks.held_by(id) - before;
            let tenant = self.requests[&id].spec.tenant;
            self.add_tenant_held(tenant, delta as i64);
        }
        ok
    }

    /// [`BlockManager::try_reserve_prefixed`] plus per-tenant holding
    /// accounting (the policy admission path): reserves for `tokens`,
    /// borrowing cached prefix blocks on a hit, and returns the prefill
    /// tokens the hit skips (0 on a miss or for prefix-free requests).
    /// Tenants are charged only for the blocks the request itself owns —
    /// shared prefix blocks belong to the cache tier.
    fn reserve_blocks_prefixed(&mut self, id: RequestId, tokens: u64) -> Option<u64> {
        let spec = self.requests[&id].spec;
        if self.tenant_quota_blocks.is_empty() {
            return self.blocks.try_reserve_prefixed(
                id,
                tokens,
                spec.prefix_id,
                spec.prefill_tokens,
                spec.prefix_len,
            );
        }
        let before = self.blocks.held_by(id);
        let hit = self.blocks.try_reserve_prefixed(
            id,
            tokens,
            spec.prefix_id,
            spec.prefill_tokens,
            spec.prefix_len,
        )?;
        let delta = self.blocks.held_by(id) as i64 - before as i64;
        self.add_tenant_held(spec.tenant, delta);
        Some(hit)
    }

    /// [`BlockManager::try_grow`] plus per-tenant holding accounting
    /// (decode-growth path; never quota-blocked).
    fn grow_blocks(&mut self, id: RequestId, tokens: u64) -> bool {
        if self.tenant_quota_blocks.is_empty() {
            return self.blocks.try_grow(id, tokens);
        }
        let before = self.blocks.held_by(id);
        let ok = self.blocks.try_grow(id, tokens);
        if ok {
            let delta = self.blocks.held_by(id) - before;
            let tenant = self.requests[&id].spec.tenant;
            self.add_tenant_held(tenant, delta as i64);
        }
        ok
    }

    /// [`BlockManager::release`] plus per-tenant holding accounting.
    fn release_blocks(&mut self, id: RequestId) {
        if !self.tenant_quota_blocks.is_empty() {
            let held = self.blocks.held_by(id);
            if held > 0 {
                let tenant = self.requests[&id].spec.tenant;
                self.add_tenant_held(tenant, -(held as i64));
            }
        }
        self.blocks.release(id);
    }

    /// Admits waiting requests that need **no** prefill (their KV arrived
    /// from a prefill replica) straight into the running set. Called by
    /// every policy before batch formation; FIFO order is preserved.
    fn admit_prefetched(&mut self) {
        if self.admissions_closed {
            return;
        }
        while self.num_running() < self.config.max_batch_size {
            self.park_quota_blocked_front();
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let r = &self.requests[&id];
            if r.remaining_prefill() > 0 {
                break;
            }
            // Reserve the transferred KV plus room for the next token.
            let need = r.cached_tokens() + 1;
            if !self.reserve_blocks(id, need) {
                break;
            }
            self.waiting.pop_front();
            self.enter_running(id, RequestPhase::Decoding);
        }
    }

    /// Moves `id` (already dequeued from `waiting`) into the running set
    /// under `phase`, assigning its admission sequence and maintaining the
    /// phase lists and the projected-KV counter.
    fn enter_running(&mut self, id: RequestId, phase: RequestPhase) {
        let seq = self.admit_seq;
        self.admit_seq += 1;
        let total = {
            let r = self.requests.get_mut(&id).expect("tracked");
            r.phase = phase;
            r.admit_seq = seq;
            r.spec.total_tokens()
        };
        self.projected_tokens += total;
        let list = match phase {
            RequestPhase::Prefilling => &mut self.prefilling,
            RequestPhase::Decoding => &mut self.decoding,
            _ => unreachable!("requests enter running as Prefilling or Decoding"),
        };
        list.insert_ordered(&mut self.requests, id);
    }

    /// Removes `id` from its phase list and the projected-KV counter (the
    /// shared half of finishing and preempting).
    fn leave_running(&mut self, id: RequestId) {
        let (phase, total) = {
            let r = &self.requests[&id];
            (r.phase, r.spec.total_tokens())
        };
        let list = match phase {
            RequestPhase::Prefilling => &mut self.prefilling,
            RequestPhase::Decoding => &mut self.decoding,
            _ => unreachable!("only running requests leave the running set"),
        };
        list.unlink(&mut self.requests, id);
        self.projected_tokens -= total;
    }

    /// Requests waiting for admission.
    pub fn num_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Requests admitted and unfinished.
    pub fn num_running(&self) -> usize {
        self.prefilling.len + self.decoding.len
    }

    /// All unfinished requests on this replica (waiting, quota-parked, or
    /// running).
    pub fn outstanding(&self) -> usize {
        self.waiting.len() + self.quota_parked.len() + self.num_running()
    }

    /// Total preemption-restarts so far (the paper's vLLM restart metric).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Requests fully completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Read access to a tracked request (for metrics/debugging).
    pub fn request(&self, id: RequestId) -> Option<&TrackedRequest> {
        self.requests.get(&id)
    }

    /// Forms the next batch, or `None` when nothing can run (idle or all
    /// in-flight). Slice storage comes from the recycle pool, so the steady
    /// state allocates nothing.
    pub fn next_batch(&mut self) -> Option<BatchComposition> {
        self.apply_quota_parking();
        self.admit_prefetched();
        let mut slices = self.slice_pool.pop().unwrap_or_default();
        debug_assert!(slices.is_empty());
        match self.config.policy {
            BatchPolicyKind::Vllm => self.vllm_batch(&mut slices),
            BatchPolicyKind::OrcaPlus => self.orca_batch(&mut slices),
            BatchPolicyKind::SarathiServe { chunk_size } => {
                self.sarathi_batch(chunk_size, &mut slices)
            }
            BatchPolicyKind::FasterTransformer => self.ft_batch(&mut slices),
            BatchPolicyKind::LightLlm => self.lightllm_batch(&mut slices),
        }
        if slices.is_empty() {
            self.slice_pool.push(slices);
            None
        } else {
            Some(BatchComposition::new(slices))
        }
    }

    /// Returns a retired batch's slice storage to the formation pool so the
    /// next [`ReplicaScheduler::next_batch`] call is allocation-free.
    /// Optional: dropping a batch instead merely costs a reallocation later.
    pub fn recycle_batch(&mut self, batch: BatchComposition) {
        let mut storage = batch.into_slices();
        storage.clear();
        self.slice_pool.push(storage);
    }

    /// Applies the effects of a finished batch, returning per-request events.
    ///
    /// Allocates the event vector; drivers on the hot path should use
    /// [`ReplicaScheduler::complete_batch_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if the batch references unknown requests (a driver bug).
    pub fn complete_batch(&mut self, batch: &BatchComposition) -> Vec<CompletionEvent> {
        let mut events = Vec::with_capacity(batch.num_requests());
        self.complete_batch_into(batch, &mut events);
        events
    }

    /// Applies the effects of a finished batch, writing per-request events
    /// into `events` (cleared first). Steady-state allocation-free when the
    /// buffer's capacity has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if the batch references unknown requests (a driver bug).
    pub fn complete_batch_into(
        &mut self,
        batch: &BatchComposition,
        events: &mut Vec<CompletionEvent>,
    ) {
        events.clear();
        for slice in batch.slices() {
            let id = slice.request_id;
            let Some(req) = self.requests.get_mut(&id) else {
                panic!("batch completion for unknown request {id}");
            };
            req.inflight_tokens = 0;
            let mut ev = CompletionEvent {
                id,
                prefill_completed: false,
                produced_token: false,
                finished: false,
            };
            if slice.is_prefill {
                req.prefilled += slice.query_tokens;
                debug_assert!(req.prefilled <= req.spec.prefill_tokens);
                if req.prefill_complete() {
                    if req.decoded == 0 {
                        // The prefill iteration yields the first output token.
                        req.decoded = 1;
                        ev.prefill_completed = true;
                        ev.produced_token = true;
                    }
                    self.promote_to_decode(id);
                    if self.requests[&id].finished() {
                        ev.finished = true;
                        self.finish(id);
                    }
                }
            } else {
                req.decoded += 1;
                debug_assert!(req.decoded <= req.spec.decode_tokens);
                ev.produced_token = true;
                if req.finished() {
                    ev.finished = true;
                    self.finish(id);
                }
            }
            events.push(ev);
        }
    }

    /// Moves a request whose prefill just completed from the prefilling list
    /// to the decoding list (same admission sequence, so admission order is
    /// preserved across the phase transition).
    fn promote_to_decode(&mut self, id: RequestId) {
        self.prefilling.unlink(&mut self.requests, id);
        self.requests.get_mut(&id).expect("tracked").phase = RequestPhase::Decoding;
        self.decoding.insert_ordered(&mut self.requests, id);
    }

    fn finish(&mut self, id: RequestId) {
        self.release_blocks(id);
        self.leave_running(id);
        self.requests.remove(&id);
        self.completed += 1;
    }

    /// Admits the front waiting request, reserving `reserve_tokens` of KV
    /// capacity. Returns the id on success.
    ///
    /// Requests that need no prefill (remote-prefilled KV) are refused here:
    /// they are [`admit_prefetched`](Self::admit_prefetched)'s job. Without
    /// this guard, a preemption that frees memory *between* the prefetch
    /// pass and the policy admission loop would re-prefill already-cached
    /// work, pushing `prefilled` past the prompt length and underflowing
    /// `remaining_prefill` (a latent seed bug, reachable in disaggregated
    /// decode pools under memory pressure).
    fn admit_front(&mut self, reserve_tokens: u64) -> Option<RequestId> {
        if self.admissions_closed {
            return None;
        }
        let &id = self.waiting.front()?;
        if self.requests[&id].remaining_prefill() == 0 {
            return None;
        }
        // Backstop only: every in-tree policy loop parks quota-blocked
        // fronts (with the same token amount) immediately before calling
        // this, so the check cannot fire today — it guards future callers
        // that admit without the pre-park.
        if !self.within_quota(id, reserve_tokens) {
            return None;
        }
        let hit = self.reserve_blocks_prefixed(id, reserve_tokens)?;
        self.waiting.pop_front();
        if hit > 0 {
            let tenant = {
                let r = self.requests.get_mut(&id).expect("tracked");
                debug_assert!(hit < r.spec.prefill_tokens, "a hit leaves prefill work");
                r.prefilled = hit;
                r.spec.tenant
            };
            self.bump_prefix_stats(tenant, hit);
        }
        self.enter_running(id, RequestPhase::Prefilling);
        Some(id)
    }

    /// Accounts one prefix-cache hit of `hit` skipped tokens for `tenant`.
    fn bump_prefix_stats(&mut self, tenant: u32, hit: u64) {
        self.prefix_hit_requests += 1;
        self.prefix_tokens_saved += hit;
        let idx = tenant as usize;
        if idx >= self.tenant_prefix_hits.len() {
            self.tenant_prefix_hits.resize(idx + 1, 0);
            self.tenant_prefix_saved.resize(idx + 1, 0);
        }
        self.tenant_prefix_hits[idx] += 1;
        self.tenant_prefix_saved[idx] += hit;
    }

    /// Evicts a running request (vLLM recompute-restart): releases its KV,
    /// resets its prefill progress, and requeues it at the front of its
    /// priority tier in the waiting queue.
    fn evict(&mut self, id: RequestId) {
        self.leave_running(id);
        self.release_blocks(id);
        let req = self.requests.get_mut(&id).expect("tracked");
        req.restart();
        self.enqueue_waiting_front(id);
        self.preemptions += 1;
    }

    // ---- crash eviction and graceful drain -------------------------------

    /// Crash eviction: removes **every** request from the replica — waiting,
    /// quota-parked, and running — releasing all KV blocks, and appends their
    /// ids to `out` in deterministic order (waiting FIFO, then quota-parked
    /// FIFO, then the prefilling and decoding lists in admission order).
    /// The caller re-routes the evicted work to surviving replicas; prefill
    /// progress is lost (vLLM recompute semantics), which
    /// [`TrackedRequest::restart`] would also do — here the tracked state is
    /// dropped entirely because the request leaves the replica.
    ///
    /// Does **not** count toward [`ReplicaScheduler::preemptions`]: crash
    /// evictions are accounted separately by the cluster driver.
    pub fn evict_all(&mut self, out: &mut Vec<RequestId>) {
        while let Some(id) = self.waiting.pop_front() {
            self.release_blocks(id);
            self.requests.remove(&id);
            out.push(id);
        }
        while let Some(id) = self.quota_parked.pop_front() {
            self.release_blocks(id);
            self.requests.remove(&id);
            out.push(id);
        }
        for list in [self.prefilling, self.decoding] {
            let mut cur = list.head;
            while cur != NO_REQ {
                let next = self.requests[&cur].next;
                self.leave_running(cur);
                self.release_blocks(cur);
                self.requests.remove(&cur);
                out.push(cur);
                cur = next;
            }
        }
        debug_assert!(
            self.requests.is_empty(),
            "crash eviction must clear the slab"
        );
        debug_assert_eq!(self.projected_tokens, 0);
        // A crash loses the replica's cached prefixes too: with every
        // request released, all entries are unreferenced and reclaimable.
        self.blocks.evict_cached_prefixes();
        debug_assert_eq!(self.blocks.used_blocks(), 0, "all KV reclaimed");
        debug_assert!(
            self.tenant_held_blocks.iter().all(|&h| h == 0),
            "tenant holdings must zero out on crash"
        );
    }

    /// Graceful drain: closes admissions (in-flight and running work keeps
    /// executing to completion) and removes everything that has **not**
    /// started — the waiting queue and the quota-parked set — appending the
    /// ids to `out` (waiting FIFO first, then parked FIFO) for the caller to
    /// re-route. Queued work holds no KV blocks, so nothing is released.
    pub fn drain_queued(&mut self, out: &mut Vec<RequestId>) {
        self.admissions_closed = true;
        while let Some(id) = self.waiting.pop_front() {
            debug_assert_eq!(self.blocks.held_by(id), 0, "queued work holds no KV");
            self.requests.remove(&id);
            out.push(id);
        }
        while let Some(id) = self.quota_parked.pop_front() {
            debug_assert_eq!(self.blocks.held_by(id), 0, "parked work holds no KV");
            self.requests.remove(&id);
            out.push(id);
        }
    }

    /// Reopens admissions after a drain was cancelled or the replica came
    /// back from warm-up.
    pub fn reopen_admissions(&mut self) {
        self.admissions_closed = false;
    }

    /// Whether a graceful drain has closed admissions.
    pub fn admissions_closed(&self) -> bool {
        self.admissions_closed
    }

    /// Preempts (recompute-restarts) one running request that is not in
    /// flight and not `protect`: the **least urgent** (numerically highest)
    /// priority class first, and within that class the most recently
    /// admitted. Returns `true` if a victim was evicted.
    ///
    /// With a single priority class the victim is simply the most recently
    /// admitted eligible request, so the walk merges the two phase lists
    /// tail-first by admission sequence — the same order as the seed's
    /// `rposition` over its single admission-ordered vector — and stops at
    /// the first eligible request. Mixed priorities disable the early exit:
    /// the merged walk continues and keeps the best (priority, admit_seq)
    /// victim seen.
    fn preempt_one(&mut self, protect: RequestId) -> bool {
        let mut dec = self.decoding.tail;
        let mut pre = self.prefilling.tail;
        let mut victim = NO_REQ;
        let mut victim_key = (0u8, 0u64);
        loop {
            let pick_decode = if dec == NO_REQ && pre == NO_REQ {
                break;
            } else if pre == NO_REQ {
                true
            } else if dec == NO_REQ {
                false
            } else {
                self.requests[&dec].admit_seq > self.requests[&pre].admit_seq
            };
            let id = if pick_decode { dec } else { pre };
            let r = &self.requests[&id];
            if id != protect && r.inflight_tokens == 0 {
                let key = (r.spec.priority, r.admit_seq);
                if victim == NO_REQ || key > victim_key {
                    victim = id;
                    victim_key = key;
                }
                // Uniform priority: the first eligible request in the
                // merged tail-first walk is the final answer.
                if !self.priority_in_use {
                    break;
                }
            }
            if pick_decode {
                dec = r.prev;
            } else {
                pre = r.prev;
            }
        }
        if victim == NO_REQ {
            return false;
        }
        self.evict(victim);
        true
    }

    /// Grows `id`'s KV reservation for one appended token, preempting other
    /// requests if necessary (vLLM recompute). If no victim remains, `id`
    /// itself is preempted and `false` is returned.
    fn grow_or_preempt(&mut self, id: RequestId) -> bool {
        let target = self.requests[&id].cached_tokens() + 1;
        loop {
            if self.grow_blocks(id, target) {
                return true;
            }
            if !self.preempt_one(id) {
                // Last resort: preempt the request itself.
                self.evict(id);
                return false;
            }
        }
    }

    fn mark_inflight(&mut self, id: RequestId, tokens: u64) {
        self.requests.get_mut(&id).expect("tracked").inflight_tokens = tokens;
    }

    /// Snapshots the ids of `list` that pass `keep` into the scratch buffer
    /// and returns it (swap it back when done). Snapshotting lets formation
    /// passes mutate the lists (growth-driven preemption) mid-iteration.
    fn snapshot_ids(
        &mut self,
        list: &PhaseList,
        keep: impl Fn(&TrackedRequest) -> bool,
    ) -> Vec<RequestId> {
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        let mut cur = list.head;
        while cur != NO_REQ {
            let r = &self.requests[&cur];
            if keep(r) {
                ids.push(cur);
            }
            cur = r.next;
        }
        ids
    }

    /// Builds decode slices for up to `limit` schedulable decode requests,
    /// handling memory growth with preemption.
    fn collect_decodes(&mut self, limit: usize, slices: &mut Vec<RequestSlice>) {
        let decoding = self.decoding;
        let ids = self.snapshot_ids(&decoding, |r| r.inflight_tokens == 0 && !r.finished());
        for &id in &ids {
            if slices.len() >= limit {
                break;
            }
            // The request may have been preempted (back to Waiting) by an
            // earlier growth in this same pass.
            if self.requests[&id].phase != RequestPhase::Decoding {
                continue;
            }
            if !self.grow_or_preempt(id) {
                continue;
            }
            let cached = self.requests[&id].cached_tokens();
            slices.push(RequestSlice::decode(id, cached));
            self.mark_inflight(id, 1);
        }
        self.ids_scratch = ids;
    }

    // ---- vLLM: prefill-prioritizing -------------------------------------

    fn vllm_batch(&mut self, slices: &mut Vec<RequestSlice>) {
        let budget = self.config.token_budget();
        let mut tokens = 0u64;
        // Eagerly admit waiting prompts as a prefill-only batch.
        while self.num_running() < self.config.max_batch_size {
            self.park_quota_blocked_front();
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget {
                break;
            }
            if self.admit_front(prompt).is_none() {
                break;
            }
            // Re-read after admission: a prefix-cache hit set `prefilled`,
            // so only the un-cached prompt tail is computed (with no hit
            // this is exactly the `prefill(id, prompt, 0)` slice of old).
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            tokens += prompt;
        }
        if !slices.is_empty() {
            return;
        }
        // Otherwise resume decodes for everything running.
        self.collect_decodes(self.config.max_batch_size, slices);
    }

    // ---- Orca+: mixed iteration-level batching ---------------------------

    fn orca_batch(&mut self, slices: &mut Vec<RequestSlice>) {
        let budget = self.config.token_budget();
        self.collect_decodes(self.config.max_batch_size, slices);
        let mut tokens = slices.len() as u64;
        while self.num_running() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            self.park_quota_blocked_front();
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget {
                break;
            }
            if self.admit_front(prompt).is_none() {
                break;
            }
            // Post-admission re-read: prefix-cache hits shrink the slice.
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            tokens += prompt;
        }
    }

    // ---- Sarathi-Serve: chunked prefills under a token budget ------------

    fn sarathi_batch(&mut self, chunk_size: u64, slices: &mut Vec<RequestSlice>) {
        self.collect_decodes(self.config.max_batch_size, slices);
        let mut budget = chunk_size.saturating_sub(slices.len() as u64);
        // Continue partially-prefilled running requests first.
        let prefilling = self.prefilling;
        let partial = self.snapshot_ids(&prefilling, |r| r.inflight_tokens == 0);
        for &id in &partial {
            if budget == 0 || slices.len() >= self.config.max_batch_size {
                break;
            }
            let r = &self.requests[&id];
            let take = r.remaining_prefill().min(budget);
            if take == 0 {
                continue;
            }
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            budget -= take;
        }
        self.ids_scratch = partial;
        // Admit new requests with the remaining budget.
        while budget > 0
            && self.num_running() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            self.park_quota_blocked_front();
            let Some(&front) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&front].spec.prefill_tokens;
            let Some(id) = self.admit_front(prompt) else {
                break;
            };
            // Post-admission re-read: a prefix-cache hit starts the chunked
            // prefill at `prefilled` instead of 0.
            let r = &self.requests[&id];
            let take = r.remaining_prefill().min(budget);
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            budget -= take;
        }
    }

    // ---- FasterTransformer: cohort (request-level) batching ---------------

    fn ft_batch(&mut self, slices: &mut Vec<RequestSlice>) {
        let budget = self.config.token_budget();
        if self.num_running() == 0 {
            // Admit a fresh cohort, preallocating each request's full KV
            // footprint (FT reserves max sequence length up front).
            while self.num_running() < self.config.max_batch_size {
                self.park_quota_blocked_front();
                let Some(&id) = self.waiting.front() else {
                    break;
                };
                let total = self.requests[&id].spec.total_tokens();
                if self.admit_front(total).is_none() {
                    break;
                }
                let _ = id;
            }
        }
        // Prefill phase: process cohort prompts (token budget may spread
        // them over several iterations).
        let mut tokens = 0u64;
        let prefilling = self.prefilling;
        let pending = self.snapshot_ids(&prefilling, |r| r.inflight_tokens == 0);
        for &id in &pending {
            // `remaining_prefill` equals the full prompt unless a prefix-
            // cache hit pre-filled the shared head at cohort admission.
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            let cached = r.prefilled;
            if tokens + take > budget && tokens > 0 {
                break;
            }
            slices.push(RequestSlice::prefill(id, take, cached));
            self.mark_inflight(id, take);
            tokens += take;
        }
        self.ids_scratch = pending;
        if !slices.is_empty() {
            return;
        }
        // Decode phase: everyone decodes until the whole cohort finishes
        // (no new admissions in between — decode prioritizing).
        self.collect_decodes(self.config.max_batch_size, slices);
    }

    // ---- LightLLM: token-level admission control --------------------------

    fn lightllm_batch(&mut self, slices: &mut Vec<RequestSlice>) {
        let budget = self.config.token_budget();
        let capacity_tokens = self.blocks.total_blocks() * self.blocks.block_size() as u64;
        self.collect_decodes(self.config.max_batch_size, slices);
        let mut tokens = slices.len() as u64;
        // Projected KV footprint of everything running, at completion —
        // maintained incrementally on admit/finish/preempt rather than
        // re-summed over the running set per call.
        let mut projected = self.projected_tokens;
        while self.num_running() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            self.park_quota_blocked_front();
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let spec = self.requests[&id].spec;
            if tokens + spec.prefill_tokens > budget {
                break;
            }
            // Token-level admission: only admit if the projected total KV
            // footprint stays within capacity, avoiding future preemptions.
            if projected + spec.total_tokens() > capacity_tokens {
                break;
            }
            if self.admit_front(spec.prefill_tokens).is_none() {
                break;
            }
            // Post-admission re-read: prefix-cache hits shrink the slice.
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            tokens += spec.prefill_tokens;
            projected += spec.total_tokens();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::time::SimTime;

    fn sched(policy: BatchPolicyKind, blocks: u64) -> ReplicaScheduler {
        ReplicaScheduler::new(SchedulerConfig::new(policy, 8), blocks, 16)
    }

    fn req(id: RequestId, prefill: u64, decode: u64) -> Request {
        Request::new(id, SimTime::ZERO, prefill, decode)
    }

    /// Drives the scheduler until all requests finish; returns batch count.
    fn run_to_completion(s: &mut ReplicaScheduler, max_iters: usize) -> usize {
        let mut iters = 0;
        while s.outstanding() > 0 {
            let batch = s.next_batch().expect("progress");
            s.complete_batch(&batch);
            iters += 1;
            assert!(iters <= max_iters, "no convergence after {max_iters} iters");
        }
        iters
    }

    #[test]
    fn vllm_prefill_prioritizes() {
        let mut s = sched(BatchPolicyKind::Vllm, 10_000);
        s.add_request(req(0, 100, 3));
        s.add_request(req(1, 200, 3));
        let b = s.next_batch().unwrap();
        // Both prompts batched together, no decodes.
        assert_eq!(b.num_prefill(), 2);
        assert_eq!(b.total_query_tokens(), 300);
        s.complete_batch(&b);
        // Now a new arrival pauses decodes again.
        s.add_request(req(2, 50, 2));
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_prefill(), 1);
        assert_eq!(b2.num_decode(), 0);
    }

    #[test]
    fn vllm_decode_batch_after_prefills() {
        let mut s = sched(BatchPolicyKind::Vllm, 10_000);
        s.add_request(req(0, 100, 5));
        let b = s.next_batch().unwrap();
        let ev = s.complete_batch(&b);
        assert!(ev[0].prefill_completed && ev[0].produced_token && !ev[0].finished);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_decode(), 1);
        assert_eq!(b2.slices()[0].cached_tokens, 101);
    }

    #[test]
    fn vllm_respects_token_budget() {
        let mut s = sched(BatchPolicyKind::Vllm, 100_000);
        s.add_request(req(0, 3000, 2));
        s.add_request(req(1, 2000, 2));
        let b = s.next_batch().unwrap();
        // 3000 + 2000 > 4096: only the first fits.
        assert_eq!(b.num_prefill(), 1);
        assert_eq!(b.total_query_tokens(), 3000);
    }

    #[test]
    fn orca_mixes_prefill_and_decode() {
        let mut s = sched(BatchPolicyKind::OrcaPlus, 10_000);
        s.add_request(req(0, 100, 5));
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        s.add_request(req(1, 50, 2));
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_decode(), 1, "ongoing decode continues");
        assert_eq!(b2.num_prefill(), 1, "new prompt joins the same batch");
    }

    #[test]
    fn sarathi_chunks_long_prompts() {
        let mut s = ReplicaScheduler::new(
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 8),
            10_000,
            16,
        );
        s.add_request(req(0, 2000, 3));
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.total_query_tokens(), 512);
        assert!(b1.slices()[0].is_prefill);
        s.complete_batch(&b1);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.total_query_tokens(), 512);
        assert_eq!(b2.slices()[0].cached_tokens, 512, "chunk continues history");
        // Total prefill spread over ceil(2000/512) = 4 iterations.
        s.complete_batch(&b2);
        let b3 = s.next_batch().unwrap();
        s.complete_batch(&b3);
        let b4 = s.next_batch().unwrap();
        assert_eq!(b4.total_query_tokens(), 2000 - 3 * 512);
        let ev = s.complete_batch(&b4);
        assert!(ev[0].prefill_completed);
    }

    #[test]
    fn sarathi_never_pauses_decodes() {
        let mut s = ReplicaScheduler::new(
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 256 }, 8),
            10_000,
            16,
        );
        s.add_request(req(0, 100, 10));
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        // A long prompt arrives while request 0 decodes.
        s.add_request(req(1, 1000, 2));
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_decode(), 1, "decode rides along");
        assert_eq!(b2.num_prefill(), 1);
        // Chunk shrinks by the decode token: 256 - 1 = 255.
        let prefill_tokens: u64 = b2
            .slices()
            .iter()
            .filter(|sl| sl.is_prefill)
            .map(|sl| sl.query_tokens)
            .sum();
        assert_eq!(prefill_tokens, 255);
    }

    #[test]
    fn ft_runs_cohort_to_completion() {
        let mut s = sched(BatchPolicyKind::FasterTransformer, 10_000);
        s.add_request(req(0, 100, 3));
        s.add_request(req(1, 100, 5));
        let b = s.next_batch().unwrap();
        assert_eq!(b.num_prefill(), 2);
        s.complete_batch(&b);
        // Arrival mid-cohort must NOT be admitted.
        s.add_request(req(2, 10, 1));
        for _ in 0..4 {
            let b = s.next_batch().unwrap();
            assert!(
                b.slices().iter().all(|sl| sl.request_id != 2),
                "no admission mid-cohort"
            );
            s.complete_batch(&b);
        }
        // Cohort (0, 1) done; now 2 is admitted.
        assert_eq!(s.completed(), 2);
        let b = s.next_batch().unwrap();
        assert_eq!(b.slices()[0].request_id, 2);
    }

    #[test]
    fn lightllm_token_admission_blocks_oversize() {
        // Capacity: 100 blocks * 16 = 1600 tokens.
        let mut s = sched(BatchPolicyKind::LightLlm, 100);
        s.add_request(req(0, 500, 500)); // projected 1000
        s.add_request(req(1, 500, 500)); // projected 2000 > 1600 => deferred
        let b = s.next_batch().unwrap();
        assert_eq!(b.num_prefill(), 1);
        assert_eq!(s.num_waiting(), 1, "second request deferred");
    }

    #[test]
    fn preemption_on_memory_pressure() {
        // Tiny memory: 8 blocks * 16 = 128 tokens; the two requests need
        // 140 tokens at peak, so decode growth must preempt one of them.
        let mut s = sched(BatchPolicyKind::Vllm, 8);
        s.add_request(req(0, 40, 30));
        s.add_request(req(1, 40, 30));
        let mut saw_preemption = false;
        for _ in 0..400 {
            if s.outstanding() == 0 {
                break;
            }
            if let Some(b) = s.next_batch() {
                s.complete_batch(&b);
            }
            if s.preemptions() > 0 {
                saw_preemption = true;
            }
        }
        assert!(saw_preemption, "expected vLLM recompute preemption");
        assert_eq!(s.completed(), 2, "both requests still finish");
        assert_eq!(s.blocks().used_blocks(), 0);
    }

    #[test]
    fn all_policies_complete_all_requests() {
        for policy in [
            BatchPolicyKind::Vllm,
            BatchPolicyKind::OrcaPlus,
            BatchPolicyKind::SarathiServe { chunk_size: 512 },
            BatchPolicyKind::FasterTransformer,
            BatchPolicyKind::LightLlm,
        ] {
            let mut s = sched(policy, 10_000);
            for i in 0..20 {
                s.add_request(req(i, 50 + i * 13, 1 + i % 7));
            }
            let iters = run_to_completion(&mut s, 10_000);
            assert!(iters > 0);
            assert_eq!(s.completed(), 20, "{policy}");
            assert_eq!(s.blocks().used_blocks(), 0, "{policy}: all KV released");
        }
    }

    #[test]
    fn inflight_requests_not_double_scheduled() {
        let mut s = sched(BatchPolicyKind::OrcaPlus, 10_000);
        s.add_request(req(0, 100, 5));
        let b1 = s.next_batch().unwrap();
        // Without completing b1, the next batch must not contain request 0.
        assert!(s.next_batch().is_none());
        s.complete_batch(&b1);
        assert!(s.next_batch().is_some());
    }

    #[test]
    fn single_token_decode_finishes_at_prefill() {
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.add_request(req(0, 64, 1));
        let b = s.next_batch().unwrap();
        let ev = s.complete_batch(&b);
        assert!(ev[0].prefill_completed && ev[0].finished);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn priority_tiers_reorder_admission() {
        let mut s =
            ReplicaScheduler::new(SchedulerConfig::new(BatchPolicyKind::Vllm, 1), 10_000, 16);
        s.add_request(req(0, 100, 2).with_priority(2));
        s.add_request(req(1, 100, 2).with_priority(0));
        let b = s.next_batch().unwrap();
        assert_eq!(b.slices()[0].request_id, 1, "urgent class admits first");
    }

    #[test]
    fn priority_fifo_within_tier() {
        let mut s =
            ReplicaScheduler::new(SchedulerConfig::new(BatchPolicyKind::Vllm, 1), 10_000, 16);
        s.add_request(req(0, 100, 2).with_priority(1));
        s.add_request(req(1, 100, 2).with_priority(1));
        let b = s.next_batch().unwrap();
        assert_eq!(b.slices()[0].request_id, 0, "same class stays FIFO");
    }

    #[test]
    fn preemption_prefers_low_priority_victims() {
        // 10 blocks × 16 = 160 tokens. Admission order (pinned by
        // sequential prefill batches): r0 prio 0 (3 blocks), r1 prio 2,
        // r2 prio 1, r3 prio 0 (2 blocks each) — 9 blocks held, 1 free.
        // First decode pass: r0's growth takes the last block, r1's growth
        // OOMs with r0 already in-flight, so the eligible victims are r2
        // (priority 1) and r3 (priority 0). The seed would evict r3 — the
        // latest admission — but priority-aware selection must take the
        // less urgent r2.
        let mut s = sched(BatchPolicyKind::Vllm, 10);
        for (id, priority, prefill) in [(0u64, 0u8, 48u64), (1, 2, 32), (2, 1, 32), (3, 0, 32)] {
            s.add_request(req(id, prefill, 30).with_priority(priority));
            let b = s.next_batch().unwrap();
            assert_eq!(b.slices()[0].request_id, id);
            s.complete_batch(&b);
        }
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        assert_eq!(s.preemptions(), 1, "growth must have preempted once");
        assert_eq!(s.request(2).unwrap().restarts, 1, "r2 is the victim");
        assert_eq!(s.request(3).unwrap().restarts, 0, "urgent r3 survives");
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn duplicate_ids_rejected() {
        let mut s = sched(BatchPolicyKind::Vllm, 100);
        s.add_request(req(0, 10, 1));
        s.add_request(req(0, 10, 1));
    }

    #[test]
    fn remote_prefilled_requests_decode_without_prefill() {
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.add_remote_prefilled(req(0, 500, 10), 1);
        let b = s.next_batch().expect("decode batch");
        assert_eq!(b.num_prefill(), 0, "no prefill work for transferred KV");
        assert_eq!(b.num_decode(), 1);
        assert_eq!(b.slices()[0].cached_tokens, 501, "prompt + first token");
        let ev = s.complete_batch(&b);
        assert!(ev[0].produced_token && !ev[0].prefill_completed);
        // 10 output tokens total, 1 produced remotely: 9 decode iterations.
        let mut iters = 1;
        while s.outstanding() > 0 {
            let b = s.next_batch().unwrap();
            s.complete_batch(&b);
            iters += 1;
        }
        assert_eq!(iters, 9);
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn remote_prefilled_respects_memory() {
        // 4 blocks * 16 = 64 tokens; a 500-token transferred KV can't fit.
        let mut s = sched(BatchPolicyKind::Vllm, 4);
        s.add_remote_prefilled(req(0, 500, 5), 1);
        assert!(s.next_batch().is_none(), "must wait for memory");
        assert_eq!(s.num_waiting(), 1);
    }

    #[test]
    #[should_panic(expected = "remote prefill")]
    fn remote_prefilled_needs_first_token() {
        let mut s = sched(BatchPolicyKind::Vllm, 100);
        s.add_remote_prefilled(req(0, 10, 5), 0);
    }

    #[test]
    fn quota_parks_over_quota_tenant_without_blocking_others() {
        // 1000 blocks; tenant 0 capped at 8 blocks (128 tokens). Its second
        // request must park while tenant 1 behind it still admits.
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.set_tenant_quotas(&[8]);
        s.add_request(req(0, 100, 50).with_tenant(0)); // 7 blocks
        s.add_request(req(1, 100, 50).with_tenant(0)); // would exceed 8
        s.add_request(req(2, 100, 5).with_tenant(1)); // unlimited tenant
        let b = s.next_batch().unwrap();
        let admitted: Vec<u64> = b.slices().iter().map(|sl| sl.request_id).collect();
        assert_eq!(admitted, vec![0, 2], "request 1 parked, not blocking 2");
        assert_eq!(s.quota_denied(), &[1], "one denial for tenant 0");
        assert_eq!(s.outstanding(), 3, "parked requests stay outstanding");
        s.complete_batch(&b);
        // Drain tenant 0's first request; its blocks free and 1 unparks.
        let mut guard = 0;
        while s.outstanding() > 0 {
            if let Some(b) = s.next_batch() {
                s.complete_batch(&b);
            }
            guard += 1;
            assert!(guard < 1_000, "quota parking must not deadlock");
        }
        assert_eq!(s.completed(), 3);
        assert_eq!(s.blocks().used_blocks(), 0);
    }

    #[test]
    fn quota_solo_infeasible_request_is_exempt() {
        // Quota 2 blocks but the request alone needs 7: exempt, or the
        // queue would deadlock.
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.set_tenant_quotas(&[2]);
        s.add_request(req(0, 100, 5).with_tenant(0));
        let b = s.next_batch().expect("exempt request admits");
        assert_eq!(b.slices()[0].request_id, 0);
        s.complete_batch(&b);
        while s.outstanding() > 0 {
            let b = s.next_batch().unwrap();
            s.complete_batch(&b);
        }
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn quota_disabled_is_transparent() {
        let drive = |quotas: bool| {
            let mut s = sched(BatchPolicyKind::Vllm, 50);
            if quotas {
                // Quota at full capacity: never binds.
                s.set_tenant_quotas(&[50]);
            }
            for i in 0..10 {
                s.add_request(req(i, 40 + i * 11, 10 + i % 5).with_tenant(0));
            }
            let mut batches = Vec::new();
            let mut guard = 0;
            while s.outstanding() > 0 {
                guard += 1;
                assert!(guard < 10_000);
                if let Some(b) = s.next_batch() {
                    batches.push(b.slices().to_vec());
                    s.complete_batch(&b);
                }
            }
            (batches, s.preemptions())
        };
        assert_eq!(drive(false), drive(true), "full-capacity quota is a no-op");
    }

    #[test]
    fn quota_respects_tenant_isolation_under_pressure() {
        // 20 blocks split 10/10 between two tenants; each floods. Neither
        // tenant's holdings may exceed its quota at admission time.
        let mut s = sched(BatchPolicyKind::Vllm, 20);
        s.set_tenant_quotas(&[10, 10]);
        for i in 0..6 {
            s.add_request(req(i, 40, 10).with_tenant((i % 2) as u32));
        }
        let mut guard = 0;
        while s.outstanding() > 0 {
            guard += 1;
            assert!(guard < 10_000, "no deadlock");
            if let Some(b) = s.next_batch() {
                s.complete_batch(&b);
            }
        }
        assert_eq!(s.completed(), 6);
        assert_eq!(s.blocks().used_blocks(), 0);
    }

    #[test]
    fn evict_all_reclaims_kv_and_orders_deterministically() {
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.set_tenant_quotas(&[8, u64::MAX]);
        s.add_request(req(0, 100, 50).with_tenant(0)); // admits (7 blocks)
        s.add_request(req(1, 100, 50).with_tenant(0)); // parks (over quota)
        s.add_request(req(2, 100, 5).with_tenant(1)); // admits
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        s.add_request(req(3, 40, 2).with_tenant(1)); // still waiting
        let b2 = s.next_batch().unwrap(); // admits 3, decodes 0 and 2
        s.complete_batch(&b2);
        assert!(s.blocks().used_blocks() > 0);
        let mut out = Vec::new();
        s.evict_all(&mut out);
        // Order: waiting FIFO, parked FIFO, then running in admission order.
        assert_eq!(out, vec![1, 0, 2, 3]);
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.blocks().used_blocks(), 0, "all KV reclaimed");
        assert_eq!(s.preemptions(), 0, "crash eviction is not a preemption");
        // The replica accepts the same ids again after eviction (re-route
        // back to a recovered replica) and quota bookkeeping still works.
        s.add_request(req(0, 100, 2).with_tenant(0));
        let b3 = s.next_batch().expect("fresh admission after eviction");
        assert_eq!(b3.slices()[0].request_id, 0);
        s.complete_batch(&b3);
        while s.outstanding() > 0 {
            let b = s.next_batch().unwrap();
            s.complete_batch(&b);
        }
        assert_eq!(s.blocks().used_blocks(), 0);
    }

    #[test]
    fn drain_queued_closes_admissions_but_finishes_running_work() {
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.add_request(req(0, 100, 3));
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        s.add_request(req(1, 50, 2));
        s.add_request(req(2, 50, 2));
        let mut out = Vec::new();
        s.drain_queued(&mut out);
        assert_eq!(out, vec![1, 2], "queued work migrates in FIFO order");
        assert!(s.admissions_closed());
        // Running request 0 still decodes to completion.
        while s.outstanding() > 0 {
            let b = s.next_batch().expect("running work keeps executing");
            assert!(b.slices().iter().all(|sl| sl.request_id == 0));
            s.complete_batch(&b);
        }
        assert_eq!(s.completed(), 1);
        // New arrivals queue but are not admitted while draining.
        s.add_request(req(3, 40, 1));
        assert!(s.next_batch().is_none(), "admissions are closed");
        s.reopen_admissions();
        assert!(s.next_batch().is_some(), "admissions reopen after warm-up");
    }

    #[test]
    fn batch_size_limit_respected() {
        let mut s = ReplicaScheduler::new(
            SchedulerConfig::new(BatchPolicyKind::OrcaPlus, 4),
            100_000,
            16,
        );
        for i in 0..10 {
            s.add_request(req(i, 10, 5));
        }
        let b = s.next_batch().unwrap();
        assert!(b.num_requests() <= 4);
    }
}
