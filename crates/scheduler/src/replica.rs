//! The replica scheduler: iteration-level batch formation plus memory
//! management (paper §4.5, middle tier).
//!
//! Each call to [`ReplicaScheduler::next_batch`] forms the next iteration's
//! batch according to the configured policy. The paper notes all five
//! policies fit in under 150 lines each on top of the memory-manager API —
//! the same holds here.
//!
//! In-flight bookkeeping: slices handed out in a batch mark their request
//! in-flight until [`ReplicaScheduler::complete_batch`] is called, so with
//! pipeline parallelism several disjoint batches can execute concurrently
//! without double-scheduling a request.

use crate::config::{BatchPolicyKind, SchedulerConfig};
use crate::memory::BlockManager;
use crate::request::{Request, RequestId, RequestPhase, TrackedRequest};
use crate::slab::IdSlab;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vidur_model::batch::{BatchComposition, RequestSlice};

/// What happened to a request when a batch completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionEvent {
    /// The request.
    pub id: RequestId,
    /// The request's prefill finished in this batch (TTFT point).
    pub prefill_completed: bool,
    /// One output token was produced in this batch.
    pub produced_token: bool,
    /// The request produced its last token and left the replica.
    pub finished: bool,
}

/// Iteration-level replica scheduler with paged KV memory management.
///
/// # Example
///
/// ```
/// use vidur_core::time::SimTime;
/// use vidur_scheduler::{BatchPolicyKind, ReplicaScheduler, Request, SchedulerConfig};
///
/// let config = SchedulerConfig::new(BatchPolicyKind::Vllm, 8);
/// let mut sched = ReplicaScheduler::new(config, 1_000, 16);
/// sched.add_request(Request::new(0, SimTime::ZERO, 100, 5));
/// let batch = sched.next_batch().expect("prefill batch");
/// assert_eq!(batch.total_query_tokens(), 100);
/// let events = sched.complete_batch(&batch);
/// assert!(events[0].prefill_completed);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaScheduler {
    config: SchedulerConfig,
    blocks: BlockManager,
    requests: IdSlab<TrackedRequest>,
    waiting: VecDeque<RequestId>,
    /// Admitted requests in admission order (vLLM preempts from the back).
    running: Vec<RequestId>,
    preemptions: u64,
    completed: u64,
}

impl ReplicaScheduler {
    /// Creates a scheduler over `total_blocks` KV blocks of `block_size`
    /// tokens.
    pub fn new(config: SchedulerConfig, total_blocks: u64, block_size: u32) -> Self {
        ReplicaScheduler {
            blocks: BlockManager::new(total_blocks, block_size, config.watermark_frac),
            config,
            requests: IdSlab::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            preemptions: 0,
            completed: 0,
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The KV block manager (read access for metrics).
    pub fn blocks(&self) -> &BlockManager {
        &self.blocks
    }

    /// Enqueues an arriving request.
    ///
    /// # Panics
    ///
    /// Panics if a request with the same id was already added.
    pub fn add_request(&mut self, req: Request) {
        let prev = self.requests.insert(req.id, TrackedRequest::new(req));
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.waiting.push_back(req.id);
    }

    /// Enqueues a request whose prompt was prefilled on *another* replica
    /// and whose KV-cache has been transferred here (prefill/decode
    /// disaggregation, à la Splitwise/DistServe — paper §2.2). The request
    /// enters the waiting queue already in the decode phase with
    /// `already_decoded` output tokens produced remotely.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids or if `already_decoded` is not in
    /// `1..=decode_tokens` (the prefill node produces the first token).
    pub fn add_remote_prefilled(&mut self, req: Request, already_decoded: u64) {
        assert!(
            already_decoded >= 1 && already_decoded <= req.decode_tokens,
            "remote prefill must have produced 1..=decode_tokens tokens"
        );
        let mut tracked = TrackedRequest::new(req);
        tracked.prefilled = req.prefill_tokens;
        tracked.decoded = already_decoded;
        let prev = self.requests.insert(req.id, tracked);
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.waiting.push_back(req.id);
    }

    /// Admits waiting requests that need **no** prefill (their KV arrived
    /// from a prefill replica) straight into the running set. Called by
    /// every policy before batch formation; FIFO order is preserved.
    fn admit_prefetched(&mut self) {
        while self.running.len() < self.config.max_batch_size {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let r = &self.requests[&id];
            if r.remaining_prefill() > 0 {
                break;
            }
            // Reserve the transferred KV plus room for the next token.
            let need = r.cached_tokens() + 1;
            if !self.blocks.try_reserve(id, need) {
                break;
            }
            self.waiting.pop_front();
            self.running.push(id);
            self.requests.get_mut(&id).expect("tracked").phase = RequestPhase::Decoding;
        }
    }

    /// Requests waiting for admission.
    pub fn num_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Requests admitted and unfinished.
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// All unfinished requests on this replica.
    pub fn outstanding(&self) -> usize {
        self.waiting.len() + self.running.len()
    }

    /// Total preemption-restarts so far (the paper's vLLM restart metric).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Requests fully completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Read access to a tracked request (for metrics/debugging).
    pub fn request(&self, id: RequestId) -> Option<&TrackedRequest> {
        self.requests.get(&id)
    }

    /// Forms the next batch, or `None` when nothing can run (idle or all
    /// in-flight).
    pub fn next_batch(&mut self) -> Option<BatchComposition> {
        self.admit_prefetched();
        let slices = match self.config.policy {
            BatchPolicyKind::Vllm => self.vllm_batch(),
            BatchPolicyKind::OrcaPlus => self.orca_batch(),
            BatchPolicyKind::SarathiServe { chunk_size } => self.sarathi_batch(chunk_size),
            BatchPolicyKind::FasterTransformer => self.ft_batch(),
            BatchPolicyKind::LightLlm => self.lightllm_batch(),
        };
        if slices.is_empty() {
            None
        } else {
            Some(BatchComposition::new(slices))
        }
    }

    /// Applies the effects of a finished batch, returning per-request events.
    ///
    /// # Panics
    ///
    /// Panics if the batch references unknown requests (a driver bug).
    pub fn complete_batch(&mut self, batch: &BatchComposition) -> Vec<CompletionEvent> {
        let mut events = Vec::with_capacity(batch.num_requests());
        for slice in batch.slices() {
            let id = slice.request_id;
            let Some(req) = self.requests.get_mut(&id) else {
                panic!("batch completion for unknown request {id}");
            };
            req.inflight_tokens = 0;
            let mut ev = CompletionEvent {
                id,
                prefill_completed: false,
                produced_token: false,
                finished: false,
            };
            if slice.is_prefill {
                req.prefilled += slice.query_tokens;
                debug_assert!(req.prefilled <= req.spec.prefill_tokens);
                if req.prefill_complete() {
                    req.phase = RequestPhase::Decoding;
                    if req.decoded == 0 {
                        // The prefill iteration yields the first output token.
                        req.decoded = 1;
                        ev.prefill_completed = true;
                        ev.produced_token = true;
                    }
                    if req.finished() {
                        ev.finished = true;
                        self.finish(id);
                    }
                }
            } else {
                req.decoded += 1;
                debug_assert!(req.decoded <= req.spec.decode_tokens);
                ev.produced_token = true;
                if req.finished() {
                    ev.finished = true;
                    self.finish(id);
                }
            }
            events.push(ev);
        }
        events
    }

    fn finish(&mut self, id: RequestId) {
        self.blocks.release(id);
        self.running.retain(|&r| r != id);
        if let Some(r) = self.requests.get_mut(&id) {
            r.phase = RequestPhase::Finished;
        }
        self.requests.remove(&id);
        self.completed += 1;
    }

    /// Admits the front waiting request, reserving `reserve_tokens` of KV
    /// capacity. Returns the id on success.
    fn admit_front(&mut self, reserve_tokens: u64) -> Option<RequestId> {
        let &id = self.waiting.front()?;
        if !self.blocks.try_reserve(id, reserve_tokens) {
            return None;
        }
        self.waiting.pop_front();
        self.running.push(id);
        let req = self.requests.get_mut(&id).expect("tracked");
        req.phase = RequestPhase::Prefilling;
        Some(id)
    }

    /// Preempts (recompute-restarts) the most recently admitted running
    /// request that is not in flight and not `protect`. Returns `true` if a
    /// victim was evicted.
    fn preempt_one(&mut self, protect: RequestId) -> bool {
        let victim_pos = self
            .running
            .iter()
            .rposition(|&id| id != protect && self.requests[&id].inflight_tokens == 0);
        let Some(pos) = victim_pos else {
            return false;
        };
        let victim = self.running.remove(pos);
        self.blocks.release(victim);
        let req = self.requests.get_mut(&victim).expect("tracked");
        req.restart();
        self.waiting.push_front(victim);
        self.preemptions += 1;
        true
    }

    /// Grows `id`'s KV reservation for one appended token, preempting other
    /// requests if necessary (vLLM recompute). If no victim remains, `id`
    /// itself is preempted and `false` is returned.
    fn grow_or_preempt(&mut self, id: RequestId) -> bool {
        let target = self.requests[&id].cached_tokens() + 1;
        loop {
            if self.blocks.try_grow(id, target) {
                return true;
            }
            if !self.preempt_one(id) {
                // Last resort: preempt the request itself.
                self.running.retain(|&r| r != id);
                self.blocks.release(id);
                let req = self.requests.get_mut(&id).expect("tracked");
                req.restart();
                self.waiting.push_front(id);
                self.preemptions += 1;
                return false;
            }
        }
    }

    fn mark_inflight(&mut self, id: RequestId, tokens: u64) {
        self.requests.get_mut(&id).expect("tracked").inflight_tokens = tokens;
    }

    /// Running requests in decode phase that are schedulable now.
    fn schedulable_decodes(&self) -> Vec<RequestId> {
        self.running
            .iter()
            .copied()
            .filter(|id| {
                let r = &self.requests[id];
                r.phase == RequestPhase::Decoding && r.inflight_tokens == 0 && !r.finished()
            })
            .collect()
    }

    /// Builds decode slices for up to `limit` schedulable decode requests,
    /// handling memory growth with preemption.
    fn collect_decodes(&mut self, limit: usize, slices: &mut Vec<RequestSlice>) {
        for id in self.schedulable_decodes() {
            if slices.len() >= limit {
                break;
            }
            // The request may have been preempted by an earlier growth.
            if !self.running.contains(&id) {
                continue;
            }
            if !self.grow_or_preempt(id) {
                continue;
            }
            let cached = self.requests[&id].cached_tokens();
            slices.push(RequestSlice::decode(id, cached));
            self.mark_inflight(id, 1);
        }
    }

    // ---- vLLM: prefill-prioritizing -------------------------------------

    fn vllm_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        let mut slices = Vec::new();
        let mut tokens = 0u64;
        // Eagerly admit waiting prompts as a prefill-only batch.
        while self.running.len() < self.config.max_batch_size {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget {
                break;
            }
            if self.admit_front(prompt).is_none() {
                break;
            }
            slices.push(RequestSlice::prefill(id, prompt, 0));
            self.mark_inflight(id, prompt);
            tokens += prompt;
        }
        if !slices.is_empty() {
            return slices;
        }
        // Otherwise resume decodes for everything running.
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        slices
    }

    // ---- Orca+: mixed iteration-level batching ---------------------------

    fn orca_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        let mut slices = Vec::new();
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        let mut tokens = slices.len() as u64;
        while self.running.len() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget {
                break;
            }
            if self.admit_front(prompt).is_none() {
                break;
            }
            slices.push(RequestSlice::prefill(id, prompt, 0));
            self.mark_inflight(id, prompt);
            tokens += prompt;
        }
        slices
    }

    // ---- Sarathi-Serve: chunked prefills under a token budget ------------

    fn sarathi_batch(&mut self, chunk_size: u64) -> Vec<RequestSlice> {
        let mut slices = Vec::new();
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        let mut budget = chunk_size.saturating_sub(slices.len() as u64);
        // Continue partially-prefilled running requests first.
        let partial: Vec<RequestId> = self
            .running
            .iter()
            .copied()
            .filter(|id| {
                let r = &self.requests[id];
                r.phase == RequestPhase::Prefilling && r.inflight_tokens == 0
            })
            .collect();
        for id in partial {
            if budget == 0 || slices.len() >= self.config.max_batch_size {
                break;
            }
            let r = &self.requests[&id];
            let take = r.remaining_prefill().min(budget);
            if take == 0 {
                continue;
            }
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            budget -= take;
        }
        // Admit new requests with the remaining budget.
        while budget > 0
            && self.running.len() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            let Some(&front) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&front].spec.prefill_tokens;
            let Some(id) = self.admit_front(prompt) else {
                break;
            };
            let take = prompt.min(budget);
            slices.push(RequestSlice::prefill(id, take, 0));
            self.mark_inflight(id, take);
            budget -= take;
        }
        slices
    }

    // ---- FasterTransformer: cohort (request-level) batching ---------------

    fn ft_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        if self.running.is_empty() {
            // Admit a fresh cohort, preallocating each request's full KV
            // footprint (FT reserves max sequence length up front).
            while self.running.len() < self.config.max_batch_size {
                let Some(&id) = self.waiting.front() else {
                    break;
                };
                let total = self.requests[&id].spec.total_tokens();
                if self.admit_front(total).is_none() {
                    break;
                }
                let _ = id;
            }
        }
        // Prefill phase: process cohort prompts (token budget may spread
        // them over several iterations).
        let mut slices = Vec::new();
        let mut tokens = 0u64;
        let pending_prefill: Vec<RequestId> = self
            .running
            .iter()
            .copied()
            .filter(|id| {
                let r = &self.requests[id];
                r.phase == RequestPhase::Prefilling && r.inflight_tokens == 0
            })
            .collect();
        for id in pending_prefill {
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget && tokens > 0 {
                break;
            }
            slices.push(RequestSlice::prefill(id, prompt, 0));
            self.mark_inflight(id, prompt);
            tokens += prompt;
        }
        if !slices.is_empty() {
            return slices;
        }
        // Decode phase: everyone decodes until the whole cohort finishes
        // (no new admissions in between — decode prioritizing).
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        slices
    }

    // ---- LightLLM: token-level admission control --------------------------

    fn lightllm_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        let capacity_tokens = self.blocks.total_blocks() * self.blocks.block_size() as u64;
        let mut slices = Vec::new();
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        let mut tokens = slices.len() as u64;
        // Projected KV footprint of everything running, at completion.
        let mut projected: u64 = self
            .running
            .iter()
            .map(|id| self.requests[id].spec.total_tokens())
            .sum();
        while self.running.len() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let spec = self.requests[&id].spec;
            if tokens + spec.prefill_tokens > budget {
                break;
            }
            // Token-level admission: only admit if the projected total KV
            // footprint stays within capacity, avoiding future preemptions.
            if projected + spec.total_tokens() > capacity_tokens {
                break;
            }
            if self.admit_front(spec.prefill_tokens).is_none() {
                break;
            }
            slices.push(RequestSlice::prefill(id, spec.prefill_tokens, 0));
            self.mark_inflight(id, spec.prefill_tokens);
            tokens += spec.prefill_tokens;
            projected += spec.total_tokens();
        }
        slices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::time::SimTime;

    fn sched(policy: BatchPolicyKind, blocks: u64) -> ReplicaScheduler {
        ReplicaScheduler::new(SchedulerConfig::new(policy, 8), blocks, 16)
    }

    fn req(id: RequestId, prefill: u64, decode: u64) -> Request {
        Request::new(id, SimTime::ZERO, prefill, decode)
    }

    /// Drives the scheduler until all requests finish; returns batch count.
    fn run_to_completion(s: &mut ReplicaScheduler, max_iters: usize) -> usize {
        let mut iters = 0;
        while s.outstanding() > 0 {
            let batch = s.next_batch().expect("progress");
            s.complete_batch(&batch);
            iters += 1;
            assert!(iters <= max_iters, "no convergence after {max_iters} iters");
        }
        iters
    }

    #[test]
    fn vllm_prefill_prioritizes() {
        let mut s = sched(BatchPolicyKind::Vllm, 10_000);
        s.add_request(req(0, 100, 3));
        s.add_request(req(1, 200, 3));
        let b = s.next_batch().unwrap();
        // Both prompts batched together, no decodes.
        assert_eq!(b.num_prefill(), 2);
        assert_eq!(b.total_query_tokens(), 300);
        s.complete_batch(&b);
        // Now a new arrival pauses decodes again.
        s.add_request(req(2, 50, 2));
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_prefill(), 1);
        assert_eq!(b2.num_decode(), 0);
    }

    #[test]
    fn vllm_decode_batch_after_prefills() {
        let mut s = sched(BatchPolicyKind::Vllm, 10_000);
        s.add_request(req(0, 100, 5));
        let b = s.next_batch().unwrap();
        let ev = s.complete_batch(&b);
        assert!(ev[0].prefill_completed && ev[0].produced_token && !ev[0].finished);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_decode(), 1);
        assert_eq!(b2.slices()[0].cached_tokens, 101);
    }

    #[test]
    fn vllm_respects_token_budget() {
        let mut s = sched(BatchPolicyKind::Vllm, 100_000);
        s.add_request(req(0, 3000, 2));
        s.add_request(req(1, 2000, 2));
        let b = s.next_batch().unwrap();
        // 3000 + 2000 > 4096: only the first fits.
        assert_eq!(b.num_prefill(), 1);
        assert_eq!(b.total_query_tokens(), 3000);
    }

    #[test]
    fn orca_mixes_prefill_and_decode() {
        let mut s = sched(BatchPolicyKind::OrcaPlus, 10_000);
        s.add_request(req(0, 100, 5));
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        s.add_request(req(1, 50, 2));
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_decode(), 1, "ongoing decode continues");
        assert_eq!(b2.num_prefill(), 1, "new prompt joins the same batch");
    }

    #[test]
    fn sarathi_chunks_long_prompts() {
        let mut s = ReplicaScheduler::new(
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 8),
            10_000,
            16,
        );
        s.add_request(req(0, 2000, 3));
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.total_query_tokens(), 512);
        assert!(b1.slices()[0].is_prefill);
        s.complete_batch(&b1);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.total_query_tokens(), 512);
        assert_eq!(b2.slices()[0].cached_tokens, 512, "chunk continues history");
        // Total prefill spread over ceil(2000/512) = 4 iterations.
        s.complete_batch(&b2);
        let b3 = s.next_batch().unwrap();
        s.complete_batch(&b3);
        let b4 = s.next_batch().unwrap();
        assert_eq!(b4.total_query_tokens(), 2000 - 3 * 512);
        let ev = s.complete_batch(&b4);
        assert!(ev[0].prefill_completed);
    }

    #[test]
    fn sarathi_never_pauses_decodes() {
        let mut s = ReplicaScheduler::new(
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 256 }, 8),
            10_000,
            16,
        );
        s.add_request(req(0, 100, 10));
        let b = s.next_batch().unwrap();
        s.complete_batch(&b);
        // A long prompt arrives while request 0 decodes.
        s.add_request(req(1, 1000, 2));
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.num_decode(), 1, "decode rides along");
        assert_eq!(b2.num_prefill(), 1);
        // Chunk shrinks by the decode token: 256 - 1 = 255.
        let prefill_tokens: u64 = b2
            .slices()
            .iter()
            .filter(|sl| sl.is_prefill)
            .map(|sl| sl.query_tokens)
            .sum();
        assert_eq!(prefill_tokens, 255);
    }

    #[test]
    fn ft_runs_cohort_to_completion() {
        let mut s = sched(BatchPolicyKind::FasterTransformer, 10_000);
        s.add_request(req(0, 100, 3));
        s.add_request(req(1, 100, 5));
        let b = s.next_batch().unwrap();
        assert_eq!(b.num_prefill(), 2);
        s.complete_batch(&b);
        // Arrival mid-cohort must NOT be admitted.
        s.add_request(req(2, 10, 1));
        for _ in 0..4 {
            let b = s.next_batch().unwrap();
            assert!(
                b.slices().iter().all(|sl| sl.request_id != 2),
                "no admission mid-cohort"
            );
            s.complete_batch(&b);
        }
        // Cohort (0, 1) done; now 2 is admitted.
        assert_eq!(s.completed(), 2);
        let b = s.next_batch().unwrap();
        assert_eq!(b.slices()[0].request_id, 2);
    }

    #[test]
    fn lightllm_token_admission_blocks_oversize() {
        // Capacity: 100 blocks * 16 = 1600 tokens.
        let mut s = sched(BatchPolicyKind::LightLlm, 100);
        s.add_request(req(0, 500, 500)); // projected 1000
        s.add_request(req(1, 500, 500)); // projected 2000 > 1600 => deferred
        let b = s.next_batch().unwrap();
        assert_eq!(b.num_prefill(), 1);
        assert_eq!(s.num_waiting(), 1, "second request deferred");
    }

    #[test]
    fn preemption_on_memory_pressure() {
        // Tiny memory: 8 blocks * 16 = 128 tokens; the two requests need
        // 140 tokens at peak, so decode growth must preempt one of them.
        let mut s = sched(BatchPolicyKind::Vllm, 8);
        s.add_request(req(0, 40, 30));
        s.add_request(req(1, 40, 30));
        let mut saw_preemption = false;
        for _ in 0..400 {
            if s.outstanding() == 0 {
                break;
            }
            if let Some(b) = s.next_batch() {
                s.complete_batch(&b);
            }
            if s.preemptions() > 0 {
                saw_preemption = true;
            }
        }
        assert!(saw_preemption, "expected vLLM recompute preemption");
        assert_eq!(s.completed(), 2, "both requests still finish");
        assert_eq!(s.blocks().used_blocks(), 0);
    }

    #[test]
    fn all_policies_complete_all_requests() {
        for policy in [
            BatchPolicyKind::Vllm,
            BatchPolicyKind::OrcaPlus,
            BatchPolicyKind::SarathiServe { chunk_size: 512 },
            BatchPolicyKind::FasterTransformer,
            BatchPolicyKind::LightLlm,
        ] {
            let mut s = sched(policy, 10_000);
            for i in 0..20 {
                s.add_request(req(i, 50 + i * 13, 1 + i % 7));
            }
            let iters = run_to_completion(&mut s, 10_000);
            assert!(iters > 0);
            assert_eq!(s.completed(), 20, "{policy}");
            assert_eq!(s.blocks().used_blocks(), 0, "{policy}: all KV released");
        }
    }

    #[test]
    fn inflight_requests_not_double_scheduled() {
        let mut s = sched(BatchPolicyKind::OrcaPlus, 10_000);
        s.add_request(req(0, 100, 5));
        let b1 = s.next_batch().unwrap();
        // Without completing b1, the next batch must not contain request 0.
        assert!(s.next_batch().is_none());
        s.complete_batch(&b1);
        assert!(s.next_batch().is_some());
    }

    #[test]
    fn single_token_decode_finishes_at_prefill() {
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.add_request(req(0, 64, 1));
        let b = s.next_batch().unwrap();
        let ev = s.complete_batch(&b);
        assert!(ev[0].prefill_completed && ev[0].finished);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn duplicate_ids_rejected() {
        let mut s = sched(BatchPolicyKind::Vllm, 100);
        s.add_request(req(0, 10, 1));
        s.add_request(req(0, 10, 1));
    }

    #[test]
    fn remote_prefilled_requests_decode_without_prefill() {
        let mut s = sched(BatchPolicyKind::Vllm, 1_000);
        s.add_remote_prefilled(req(0, 500, 10), 1);
        let b = s.next_batch().expect("decode batch");
        assert_eq!(b.num_prefill(), 0, "no prefill work for transferred KV");
        assert_eq!(b.num_decode(), 1);
        assert_eq!(b.slices()[0].cached_tokens, 501, "prompt + first token");
        let ev = s.complete_batch(&b);
        assert!(ev[0].produced_token && !ev[0].prefill_completed);
        // 10 output tokens total, 1 produced remotely: 9 decode iterations.
        let mut iters = 1;
        while s.outstanding() > 0 {
            let b = s.next_batch().unwrap();
            s.complete_batch(&b);
            iters += 1;
        }
        assert_eq!(iters, 9);
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn remote_prefilled_respects_memory() {
        // 4 blocks * 16 = 64 tokens; a 500-token transferred KV can't fit.
        let mut s = sched(BatchPolicyKind::Vllm, 4);
        s.add_remote_prefilled(req(0, 500, 5), 1);
        assert!(s.next_batch().is_none(), "must wait for memory");
        assert_eq!(s.num_waiting(), 1);
    }

    #[test]
    #[should_panic(expected = "remote prefill")]
    fn remote_prefilled_needs_first_token() {
        let mut s = sched(BatchPolicyKind::Vllm, 100);
        s.add_remote_prefilled(req(0, 10, 5), 0);
    }

    #[test]
    fn batch_size_limit_respected() {
        let mut s = ReplicaScheduler::new(
            SchedulerConfig::new(BatchPolicyKind::OrcaPlus, 4),
            100_000,
            16,
        );
        for i in 0..10 {
            s.add_request(req(i, 10, 5));
        }
        let b = s.next_batch().unwrap();
        assert!(b.num_requests() <= 4);
    }
}
