//! Global (cluster-tier) request routing (paper §4.5, first tier).
//!
//! [`GlobalPolicyKind`] names every routing policy; [`GlobalPolicy`] is the
//! seed's straightforward router over an explicit outstanding-count slice,
//! kept as the executable spec for the four seed policies. The simulators
//! route through the [`router`](crate::router) subsystem
//! ([`RoutingTier`](crate::RoutingTier)), which re-expresses those policies
//! over an incrementally-maintained [`RouterView`](crate::RouterView) —
//! byte-identical decisions, pinned by `tests/routing_equivalence.rs` — and
//! adds the stateful tier policies (priority-aware, fair-share, affinity)
//! this spec router deliberately refuses to run.

use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;

/// Which routing policy the global scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalPolicyKind {
    /// Cycle through replicas.
    RoundRobin,
    /// Route to the replica with the fewest unfinished requests.
    LeastOutstanding,
    /// Uniform random choice.
    Random,
    /// Stateful deferred routing (paper §4.5): hold requests centrally and
    /// only bind one to a replica whose outstanding count is below
    /// `max_outstanding`, avoiding early binding under bursts.
    Deferred {
        /// Largest outstanding-request count at which a replica still
        /// accepts new work.
        max_outstanding: usize,
    },
    /// Deferred routing that drains the held queue in (priority, arrival)
    /// order: the most urgent waiting tier binds first, spread across the
    /// least-loaded replicas. Tier-only (see
    /// [`RoutingTier`](crate::RoutingTier)).
    PriorityAware {
        /// Largest outstanding-request count at which a replica still
        /// accepts new work.
        max_outstanding: usize,
    },
    /// Weighted fair-share admission (WFQ-style virtual time per tenant):
    /// under contention the tenant with the least weighted service bound so
    /// far binds first. Weights come from the cluster configuration.
    /// Tier-only (see [`RoutingTier`](crate::RoutingTier)).
    FairShare {
        /// Largest outstanding-request count at which a replica still
        /// accepts new work.
        max_outstanding: usize,
    },
    /// Sticky tenant→replica routing with load-aware spill, modelling
    /// KV/prefix reuse on a tenant's home replica. Tier-only (see
    /// [`RoutingTier`](crate::RoutingTier)).
    Affinity {
        /// How many outstanding requests above the least-loaded replica the
        /// home replica may be before requests spill away from it.
        spill_margin: usize,
    },
    /// KV-aware routing on observed replica state: among the replicas
    /// within a small outstanding-load band of the least-loaded one, prefer
    /// the largest expected prefix-cache hit for the arriving request
    /// (published per arrival via
    /// [`RoutingTier::set_route_prefix_hits`](crate::RoutingTier::set_route_prefix_hits)),
    /// breaking ties toward the most free KV blocks, then the fewest
    /// outstanding requests. The band keeps hot prefixes from starving the
    /// rest of the fleet. Tier-only (see
    /// [`RoutingTier`](crate::RoutingTier)).
    KvAware,
}

impl std::fmt::Display for GlobalPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlobalPolicyKind::RoundRobin => f.write_str("round-robin"),
            GlobalPolicyKind::LeastOutstanding => f.write_str("least-outstanding"),
            GlobalPolicyKind::Random => f.write_str("random"),
            // The parameter is part of the identity: search/report labels
            // must distinguish two deferred configs.
            GlobalPolicyKind::Deferred { max_outstanding } => {
                write!(f, "deferred(max={max_outstanding})")
            }
            GlobalPolicyKind::PriorityAware { max_outstanding } => {
                write!(f, "priority-aware(max={max_outstanding})")
            }
            GlobalPolicyKind::FairShare { max_outstanding } => {
                write!(f, "fair-share(max={max_outstanding})")
            }
            GlobalPolicyKind::Affinity { spill_margin } => {
                write!(f, "affinity(spill={spill_margin})")
            }
            GlobalPolicyKind::KvAware => f.write_str("kv-aware"),
        }
    }
}

/// The global scheduler: picks a replica index for each arrival.
///
/// # Example
///
/// ```
/// use vidur_scheduler::{GlobalPolicy, GlobalPolicyKind};
/// let mut g = GlobalPolicy::new(GlobalPolicyKind::RoundRobin, 3, 1);
/// assert_eq!(g.route(&[0, 0, 0]), 0);
/// assert_eq!(g.route(&[1, 0, 0]), 1);
/// assert_eq!(g.route(&[1, 1, 0]), 2);
/// assert_eq!(g.route(&[1, 1, 1]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalPolicy {
    kind: GlobalPolicyKind,
    num_replicas: usize,
    next: usize,
    rng: SimRng,
}

impl GlobalPolicy {
    /// Creates a router over `num_replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas == 0`.
    pub fn new(kind: GlobalPolicyKind, num_replicas: usize, seed: u64) -> Self {
        assert!(num_replicas > 0, "need at least one replica");
        GlobalPolicy {
            kind,
            num_replicas,
            next: 0,
            rng: SimRng::new(seed),
        }
    }

    /// The policy in use.
    pub fn kind(&self) -> GlobalPolicyKind {
        self.kind
    }

    /// Picks the replica for the next request. `outstanding` holds each
    /// replica's current unfinished-request count.
    ///
    /// # Panics
    ///
    /// Panics if `outstanding.len()` differs from the configured replica
    /// count.
    pub fn route(&mut self, outstanding: &[usize]) -> usize {
        self.try_route(outstanding)
            .expect("non-deferring policies always route")
    }

    /// Like [`route`](Self::route), but may return `None` for deferring
    /// policies when no replica should accept the request yet. The caller
    /// (the cluster simulator) re-offers deferred requests whenever replica
    /// load drops.
    pub fn try_route(&mut self, outstanding: &[usize]) -> Option<usize> {
        assert_eq!(
            outstanding.len(),
            self.num_replicas,
            "replica count changed mid-simulation"
        );
        match self.kind {
            GlobalPolicyKind::RoundRobin => {
                let r = self.next;
                self.next = (self.next + 1) % self.num_replicas;
                Some(r)
            }
            GlobalPolicyKind::LeastOutstanding => outstanding
                .iter()
                .enumerate()
                .min_by_key(|&(_, &n)| n)
                .map(|(i, _)| i),
            GlobalPolicyKind::Random => {
                Some(self.rng.next_below(self.num_replicas as u64) as usize)
            }
            GlobalPolicyKind::Deferred { max_outstanding } => outstanding
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n < max_outstanding)
                .min_by_key(|&(_, &n)| n)
                .map(|(i, _)| i),
            GlobalPolicyKind::PriorityAware { .. }
            | GlobalPolicyKind::FairShare { .. }
            | GlobalPolicyKind::Affinity { .. }
            | GlobalPolicyKind::KvAware => panic!(
                "{} is a stateful tier policy: route through \
                 vidur_scheduler::RoutingTier",
                self.kind
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::RoundRobin, 4, 0);
        let picks: Vec<usize> = (0..8).map(|_| g.route(&[0; 4])).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_outstanding_picks_min() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::LeastOutstanding, 3, 0);
        assert_eq!(g.route(&[5, 2, 9]), 1);
        assert_eq!(g.route(&[5, 2, 1]), 2);
        // Ties go to the lowest index (deterministic).
        assert_eq!(g.route(&[3, 3, 3]), 0);
    }

    #[test]
    fn random_covers_all_replicas() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::Random, 4, 7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.route(&[0; 4])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_random_given_seed() {
        let mut a = GlobalPolicy::new(GlobalPolicyKind::Random, 4, 9);
        let mut b = GlobalPolicy::new(GlobalPolicyKind::Random, 4, 9);
        for _ in 0..32 {
            assert_eq!(a.route(&[0; 4]), b.route(&[0; 4]));
        }
    }

    #[test]
    fn deferred_holds_under_load() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::Deferred { max_outstanding: 4 }, 2, 0);
        // Both replicas saturated: defer.
        assert_eq!(g.try_route(&[4, 5]), None);
        // One frees up: bind to it.
        assert_eq!(g.try_route(&[4, 3]), Some(1));
        assert_eq!(g.try_route(&[0, 3]), Some(0));
    }

    #[test]
    #[should_panic(expected = "always route")]
    fn route_panics_for_deferred_when_full() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::Deferred { max_outstanding: 1 }, 1, 0);
        g.route(&[5]);
    }

    #[test]
    #[should_panic(expected = "replica count")]
    fn mismatched_outstanding_panics() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::RoundRobin, 2, 0);
        g.route(&[0, 0, 0]);
    }

    #[test]
    fn display_distinguishes_parameters() {
        // Two deferred configs must not collapse to the same label.
        let a = GlobalPolicyKind::Deferred { max_outstanding: 4 }.to_string();
        let b = GlobalPolicyKind::Deferred {
            max_outstanding: 48,
        }
        .to_string();
        assert_ne!(a, b);
        assert_eq!(a, "deferred(max=4)");
        assert_eq!(
            GlobalPolicyKind::FairShare { max_outstanding: 8 }.to_string(),
            "fair-share(max=8)"
        );
        assert_eq!(
            GlobalPolicyKind::PriorityAware { max_outstanding: 8 }.to_string(),
            "priority-aware(max=8)"
        );
        assert_eq!(
            GlobalPolicyKind::Affinity { spill_margin: 2 }.to_string(),
            "affinity(spill=2)"
        );
    }

    #[test]
    #[should_panic(expected = "stateful tier policy")]
    fn spec_router_refuses_tier_policies() {
        let mut g = GlobalPolicy::new(GlobalPolicyKind::FairShare { max_outstanding: 4 }, 2, 0);
        g.try_route(&[0, 0]);
    }
}
