//! The global routing tier (paper §4.5, first tier) as a real subsystem.
//!
//! [`GlobalPolicy`](crate::GlobalPolicy) is the seed's stateless
//! enum-match router and survives as the executable spec (the differential
//! test in `tests/routing_equivalence.rs` pins the two against each other).
//! This module is what the simulators actually run:
//!
//! * [`RouterView`] — live replica state (outstanding requests, in-system
//!   tokens, free KV blocks, per-tenant in-system counts), maintained
//!   **incrementally** by the tier as requests dispatch and finish. Routing
//!   a request never rebuilds a load vector.
//! * [`Router`] — the policy trait: placement decisions plus the deferred
//!   queue discipline, both driven purely by the view and the request. In
//!   the spirit of KML-style kernel policies, a router is a pluggable
//!   heuristic over observable system state, not a branch in the simulator.
//! * [`RoutingTier`] — owns the view, the deferred-queue bookkeeping the
//!   cluster simulator used to hand-roll, and per-tenant routing statistics.
//!   Both the aggregated cluster and each pool of a disaggregated deployment
//!   dispatch through one of these.
//!
//! Seven policies ship: the four seed policies (round-robin,
//! least-outstanding, random, deferred — byte-identical decisions to
//! [`GlobalPolicy`](crate::GlobalPolicy)), plus the stateful tier policies
//! the seed could not express: priority-aware deferred routing, weighted
//! fair-share (WFQ-style virtual time per tenant), and sticky tenant
//! affinity with load-aware spill.

use crate::global::GlobalPolicyKind;
use std::collections::VecDeque;
use std::fmt;
use vidur_core::rng::SimRng;

/// What the routing tier knows about one arriving request — the routing key
/// plus the attributes stateful policies route on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Opaque caller key (the simulators use the trace index) returned when
    /// a deferred request finally binds.
    pub key: u64,
    /// Tenant index (0 for single-tenant runs).
    pub tenant: u32,
    /// Priority class: 0 is the most urgent.
    pub priority: u8,
    /// Service demand in tokens (prompt + output) — the fair-share credit
    /// a dispatch costs its tenant.
    pub tokens: u64,
}

/// Membership state of one replica behind the tier. Only [`Live`]
/// replicas receive new work; the other states exist for elastic fleets
/// (fault injection and autoscaling — see `vidur_simulator::faults`).
///
/// [`Live`]: ReplicaHealth::Live
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaHealth {
    /// Routable: the replica accepts new dispatches.
    #[default]
    Live,
    /// Gracefully draining: running work finishes, no new dispatches.
    Draining,
    /// Warming up (model load + weight transfer): not yet routable.
    Warming,
    /// Powered off or crashed.
    Down,
}

/// Live load state of one replica, maintained incrementally by the tier.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplicaLoad {
    /// Requests dispatched to the replica and not yet finished (equals the
    /// replica scheduler's `outstanding()` — waiting, parked, or running).
    pub outstanding: usize,
    /// Total tokens (prompt + output) of those outstanding requests.
    pub outstanding_tokens: u64,
    /// Free KV blocks, as last published by the driver via
    /// [`RoutingTier::set_free_kv_blocks`] (0 until first published).
    pub free_kv_blocks: u64,
}

/// The incrementally-maintained view of cluster state a [`Router`] decides
/// on. Replica loads update on dispatch/finish; per-tenant in-system counts
/// update on arrival/finish; nothing is rebuilt per arrival.
#[derive(Debug, Clone)]
pub struct RouterView {
    replicas: Vec<ReplicaLoad>,
    /// Membership state per replica; all [`ReplicaHealth::Live`] in a
    /// static fleet.
    health: Vec<ReplicaHealth>,
    /// Replicas whose health is not `Live` (0 in a static fleet — the
    /// routable-only scans reduce to the classic whole-fleet scans then).
    non_live: usize,
    /// Requests currently in the system (deferred or dispatched, unfinished)
    /// per tenant. Grown on first sight of a tenant.
    tenant_in_system: Vec<usize>,
    /// Expected prefix-cache hit tokens per replica *for the request being
    /// routed*, published per arrival via
    /// [`RoutingTier::set_route_prefix_hits`] (all zero until then, and in
    /// every run without a prefix cache).
    prefix_hits: Vec<u64>,
}

impl RouterView {
    fn new(num_replicas: usize) -> Self {
        RouterView {
            replicas: vec![ReplicaLoad::default(); num_replicas],
            health: vec![ReplicaHealth::Live; num_replicas],
            non_live: 0,
            tenant_in_system: Vec::new(),
            prefix_hits: vec![0; num_replicas],
        }
    }

    /// Number of replicas behind this tier.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// All replica loads, index-ordered.
    pub fn replicas(&self) -> &[ReplicaLoad] {
        &self.replicas
    }

    /// One replica's load.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn replica(&self, replica: usize) -> &ReplicaLoad {
        &self.replicas[replica]
    }

    /// Outstanding requests on `replica`.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn outstanding(&self, replica: usize) -> usize {
        self.replicas[replica].outstanding
    }

    /// Membership state of `replica`.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn health(&self, replica: usize) -> ReplicaHealth {
        self.health[replica]
    }

    /// True when `replica` accepts new dispatches.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn is_routable(&self, replica: usize) -> bool {
        self.health[replica] == ReplicaHealth::Live
    }

    /// Number of routable (live) replicas.
    pub fn num_routable(&self) -> usize {
        self.replicas.len() - self.non_live
    }

    fn set_health(&mut self, replica: usize, health: ReplicaHealth) -> bool {
        let old = self.health[replica];
        if old == health {
            return false;
        }
        self.non_live -= usize::from(old != ReplicaHealth::Live);
        self.non_live += usize::from(health != ReplicaHealth::Live);
        self.health[replica] = health;
        true
    }

    /// The routable replica with the fewest outstanding requests (lowest
    /// index on ties — the same tie-break as the seed's `min_by_key`).
    ///
    /// # Panics
    ///
    /// Panics when no replica is routable; policies that must tolerate a
    /// fully-dark fleet use [`RouterView::try_least_outstanding`].
    pub fn least_outstanding(&self) -> usize {
        self.try_least_outstanding()
            .expect("tier has at least one routable replica")
    }

    /// Like [`RouterView::least_outstanding`], but `None` when no replica
    /// is routable.
    pub fn try_least_outstanding(&self) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.health[i] == ReplicaHealth::Live)
            .min_by_key(|&(_, l)| l.outstanding)
            .map(|(i, _)| i)
    }

    /// The least-outstanding routable replica whose count is strictly below
    /// `cap`, or `None` when every routable replica is at or over it
    /// (defer).
    pub fn least_outstanding_below(&self, cap: usize) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|&(i, l)| l.outstanding < cap && self.health[i] == ReplicaHealth::Live)
            .min_by_key(|&(_, l)| l.outstanding)
            .map(|(i, _)| i)
    }

    /// Expected prefix-cache hit tokens on `replica` for the request
    /// currently being routed (0 unless the driver published hits for this
    /// arrival).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn prefix_hit(&self, replica: usize) -> u64 {
        self.prefix_hits[replica]
    }

    /// Requests in the system (deferred or dispatched, unfinished) for
    /// `tenant`.
    pub fn tenant_in_system(&self, tenant: u32) -> usize {
        self.tenant_in_system
            .get(tenant as usize)
            .copied()
            .unwrap_or(0)
    }

    fn tenant_entry(&mut self, tenant: u32) -> &mut usize {
        let idx = tenant as usize;
        if idx >= self.tenant_in_system.len() {
            self.tenant_in_system.resize(idx + 1, 0);
        }
        &mut self.tenant_in_system[idx]
    }
}

/// One request held back by a deferring policy, in arrival order.
#[derive(Debug, Clone, Copy)]
pub struct DeferredEntry {
    /// The deferred request.
    pub req: RouteRequest,
    /// Tier-wide arrival sequence number (FIFO tie-break).
    pub seq: u64,
}

/// A global routing policy: decides replica placement (or deferral) for each
/// request and, for deferring policies, which held request binds next.
///
/// Implementations must be deterministic functions of their own state, the
/// request, and the [`RouterView`]; the tier guarantees the view is
/// up to date at every call.
pub trait Router: fmt::Debug + Send {
    /// Returns a boxed deep copy of this policy's state. The speculative
    /// sharded router clones the whole tier to pre-route a window against a
    /// throwaway copy of the live view, so every policy must be cloneable.
    fn clone_box(&self) -> Box<dyn Router>;

    /// Called once per arriving request *before* it is counted in the view
    /// (fair-share uses this for idle-tenant virtual-time catch-up).
    fn on_arrival(&mut self, _req: &RouteRequest, _view: &RouterView) {}

    /// Picks a replica for `req`, or `None` to defer it into the tier's
    /// held queue.
    fn try_place(&mut self, req: &RouteRequest, view: &RouterView) -> Option<usize>;

    /// Which deferred entry should bind next (an index into `deferred`).
    /// The default is FIFO. Returning `None` holds everything.
    fn select_deferred(&mut self, deferred: &[DeferredEntry], _view: &RouterView) -> Option<usize> {
        if deferred.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    /// Accounts a successful dispatch (called for immediate and deferred
    /// binds alike, after the view reflects the dispatch).
    fn on_dispatch(&mut self, _req: &RouteRequest, _target: usize, _view: &RouterView) {}

    /// Called after a replica's health changes (membership churn). Policies
    /// holding replica references migrate them here — affinity re-homes
    /// tenants whose home left the routable set.
    fn on_membership_change(&mut self, _view: &RouterView) {}
}

// ---- the four seed policies, re-expressed --------------------------------

/// Cycle through replicas (the seed's `RoundRobin`).
#[derive(Debug, Clone)]
struct RoundRobinRouter {
    next: usize,
}

impl Router for RoundRobinRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        if view.num_routable() == 0 {
            return None;
        }
        // With the whole fleet live this is the classic one-step modulo
        // cursor; with churn the cursor walks past non-routable replicas.
        let n = view.num_replicas();
        for _ in 0..n {
            let r = self.next;
            self.next = (self.next + 1) % n;
            if view.is_routable(r) {
                return Some(r);
            }
        }
        unreachable!("num_routable() > 0 guarantees a live replica in the walk")
    }
}

/// Fewest unfinished requests (the seed's `LeastOutstanding`).
#[derive(Debug, Clone)]
struct LeastOutstandingRouter;

impl Router for LeastOutstandingRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        view.try_least_outstanding()
    }
}

/// Uniform random choice (the seed's `Random`; same RNG stream).
#[derive(Debug, Clone)]
struct RandomRouter {
    rng: SimRng,
}

impl Router for RandomRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        let routable = view.num_routable();
        if routable == 0 {
            return None;
        }
        let draw = self.rng.next_below(routable as u64) as usize;
        if routable == view.num_replicas() {
            // Whole fleet live: identical RNG stream and placement to the
            // seed policy.
            return Some(draw);
        }
        // Map the draw onto the draw-th routable replica, index order.
        let mut seen = 0;
        for r in 0..view.num_replicas() {
            if view.is_routable(r) {
                if seen == draw {
                    return Some(r);
                }
                seen += 1;
            }
        }
        unreachable!("draw < num_routable()")
    }
}

/// Hold requests centrally until some replica is below `max_outstanding`
/// (the seed's stateful `Deferred`, paper §4.5).
#[derive(Debug, Clone)]
struct DeferredRouter {
    max_outstanding: usize,
}

impl Router for DeferredRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        view.least_outstanding_below(self.max_outstanding)
    }
}

// ---- the stateful tier policies ------------------------------------------

/// Deferred routing that binds the most urgent waiting tier first: the held
/// queue is drained in (priority, arrival) order, and each bind spreads onto
/// the least-loaded replica below the outstanding cap.
#[derive(Debug, Clone)]
struct PriorityAwareRouter {
    max_outstanding: usize,
}

impl Router for PriorityAwareRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        view.least_outstanding_below(self.max_outstanding)
    }

    fn select_deferred(&mut self, deferred: &[DeferredEntry], _view: &RouterView) -> Option<usize> {
        deferred
            .iter()
            .enumerate()
            .min_by_key(|&(_, e)| (e.req.priority, e.seq))
            .map(|(i, _)| i)
    }
}

/// Weighted fair-share admission (WFQ-style): each tenant accumulates
/// virtual time at `tokens / weight` per dispatched request, and under
/// contention the held queue binds the tenant with the smallest virtual
/// time first. An idle tenant's clock catches up to the served floor on
/// return, so sleeping never banks unbounded credit. Placement itself is
/// load-aware below the outstanding cap, like [`GlobalPolicyKind::Deferred`].
#[derive(Debug, Clone)]
struct FairShareRouter {
    max_outstanding: usize,
    /// Per-tenant weights (missing entries default to 1.0).
    weights: Vec<f64>,
    /// Per-tenant virtual time, grown on first sight.
    vtime: Vec<f64>,
    /// Virtual time of the last served request's start tag — the floor idle
    /// tenants catch up to.
    vfloor: f64,
}

impl FairShareRouter {
    fn weight(&self, tenant: u32) -> f64 {
        let w = self.weights.get(tenant as usize).copied().unwrap_or(1.0);
        if w > 0.0 {
            w
        } else {
            1.0
        }
    }

    fn vtime_entry(&mut self, tenant: u32) -> &mut f64 {
        let idx = tenant as usize;
        if idx >= self.vtime.len() {
            self.vtime.resize(idx + 1, 0.0);
        }
        &mut self.vtime[idx]
    }
}

impl Router for FairShareRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn on_arrival(&mut self, req: &RouteRequest, view: &RouterView) {
        if view.tenant_in_system(req.tenant) == 0 {
            let floor = self.vfloor;
            let v = self.vtime_entry(req.tenant);
            *v = v.max(floor);
        }
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        view.least_outstanding_below(self.max_outstanding)
    }

    fn select_deferred(&mut self, deferred: &[DeferredEntry], _view: &RouterView) -> Option<usize> {
        deferred
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let va = self
                    .vtime
                    .get(a.req.tenant as usize)
                    .copied()
                    .unwrap_or(0.0);
                let vb = self
                    .vtime
                    .get(b.req.tenant as usize)
                    .copied()
                    .unwrap_or(0.0);
                va.total_cmp(&vb).then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
    }

    fn on_dispatch(&mut self, req: &RouteRequest, _target: usize, _view: &RouterView) {
        let w = self.weight(req.tenant);
        let v = self.vtime_entry(req.tenant);
        let start = *v;
        *v = start + req.tokens as f64 / w;
        self.vfloor = self.vfloor.max(start);
    }
}

/// Sentinel for "tenant has no home replica yet".
const NO_HOME: usize = usize::MAX;

/// Sticky tenant→replica routing with load-aware spill: each tenant is
/// pinned to the replica that was least loaded at its first request (the
/// KV/prefix-reuse model — a tenant's context stays hot on its home), and a
/// request only spills to the globally least-loaded replica when the home is
/// more than `spill_margin` requests above it.
#[derive(Debug, Clone)]
struct AffinityRouter {
    spill_margin: usize,
    /// Per-tenant home replica, grown on first sight.
    home: Vec<usize>,
}

impl Router for AffinityRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, req: &RouteRequest, view: &RouterView) -> Option<usize> {
        let least = view.try_least_outstanding()?;
        let idx = req.tenant as usize;
        if idx >= self.home.len() {
            self.home.resize(idx + 1, NO_HOME);
        }
        if self.home[idx] == NO_HOME || !view.is_routable(self.home[idx]) {
            self.home[idx] = least;
        }
        let home = self.home[idx];
        // A known cache hit on the home replica overrides the spill margin:
        // the recomputation a spill would cost is exactly what stickiness
        // exists to avoid. Without a prefix cache the hit is always 0 and
        // the classic margin rule below decides alone.
        if view.prefix_hit(home) > 0 {
            return Some(home);
        }
        if view.outstanding(home) <= view.outstanding(least) + self.spill_margin {
            Some(home)
        } else {
            Some(least)
        }
    }

    fn on_membership_change(&mut self, view: &RouterView) {
        // A tenant whose home left the routable set re-homes (onto the then
        // least-loaded live replica) at its next request.
        for home in &mut self.home {
            if *home != NO_HOME && !view.is_routable(*home) {
                *home = NO_HOME;
            }
        }
    }
}

/// How many outstanding requests above the least-loaded replica a
/// [`KvAwareRouter`] candidate may carry and still attract work on a cache
/// hit. A hit saves one prefix prefill — never worth an unbounded queue —
/// so hot prefixes must not pile their whole arrival stream onto one
/// replica while the rest of the fleet idles.
const KV_AWARE_LOAD_MARGIN: usize = 4;

/// KV-aware placement over observed replica state: among the routable
/// replicas within [`KV_AWARE_LOAD_MARGIN`] outstanding requests of the
/// least-loaded one, the largest expected prefix-cache hit for the
/// arriving request wins, ties broken toward the most free KV blocks, then
/// the fewest outstanding requests, then the lowest index. Never defers
/// while any replica is routable; with no published hits (or no prefix
/// cache) it degrades to most-free-KV placement over the least-loaded
/// band.
#[derive(Debug, Clone)]
struct KvAwareRouter;

impl Router for KvAwareRouter {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }

    fn try_place(&mut self, _req: &RouteRequest, view: &RouterView) -> Option<usize> {
        use std::cmp::Reverse;
        let least = (0..view.num_replicas())
            .filter(|&r| view.is_routable(r))
            .map(|r| view.replica(r).outstanding)
            .min()?;
        (0..view.num_replicas())
            .filter(|&r| view.is_routable(r))
            .filter(|&r| view.replica(r).outstanding <= least + KV_AWARE_LOAD_MARGIN)
            .min_by_key(|&r| {
                let load = view.replica(r);
                (
                    Reverse(view.prefix_hit(r)),
                    Reverse(load.free_kv_blocks),
                    load.outstanding,
                )
            })
    }
}

// ---- the tier -------------------------------------------------------------

/// Per-tenant routing statistics accumulated by a [`RoutingTier`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantRouting {
    /// Requests bound to a replica (immediately or after deferral).
    pub routed: u64,
    /// Requests that were held in the deferred queue at least once.
    pub deferred: u64,
    /// Tokens (prompt + output) of routed requests — the fair-share
    /// service measure.
    pub tokens: u64,
}

/// The shared global scheduling tier: one [`Router`] policy, the live
/// [`RouterView`], the deferred-queue bookkeeping, and per-tenant routing
/// statistics. The aggregated cluster runs one tier; a disaggregated
/// deployment runs two (one per pool).
///
/// # Example
///
/// ```
/// use vidur_scheduler::{GlobalPolicyKind, RouteRequest, RoutingTier};
/// let mut tier = RoutingTier::new(GlobalPolicyKind::RoundRobin, 3, 1, &[]);
/// let req = |key| RouteRequest { key, tenant: 0, priority: 0, tokens: 100 };
/// assert_eq!(tier.route(req(0)), Some(0));
/// assert_eq!(tier.route(req(1)), Some(1));
/// assert_eq!(tier.route(req(2)), Some(2));
/// assert_eq!(tier.route(req(3)), Some(0));
/// ```
#[derive(Debug)]
pub struct RoutingTier {
    kind: GlobalPolicyKind,
    router: Box<dyn Router>,
    view: RouterView,
    deferred: VecDeque<DeferredEntry>,
    seq: u64,
    tenants: Vec<TenantRouting>,
    total_routed_tokens: u64,
    weights: Vec<f64>,
}

impl Clone for RoutingTier {
    fn clone(&self) -> Self {
        RoutingTier {
            kind: self.kind,
            router: self.router.clone_box(),
            view: self.view.clone(),
            deferred: self.deferred.clone(),
            seq: self.seq,
            tenants: self.tenants.clone(),
            total_routed_tokens: self.total_routed_tokens,
            weights: self.weights.clone(),
        }
    }
}

impl RoutingTier {
    /// Builds a tier over `num_replicas` replicas. `seed` feeds the random
    /// policy's RNG; `weights` are the per-tenant fair-share weights (index
    /// = tenant id, missing entries weigh 1.0; ignored by other policies).
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas == 0`.
    pub fn new(kind: GlobalPolicyKind, num_replicas: usize, seed: u64, weights: &[f64]) -> Self {
        assert!(num_replicas > 0, "need at least one replica");
        let router: Box<dyn Router> = match kind {
            GlobalPolicyKind::RoundRobin => Box::new(RoundRobinRouter { next: 0 }),
            GlobalPolicyKind::LeastOutstanding => Box::new(LeastOutstandingRouter),
            GlobalPolicyKind::Random => Box::new(RandomRouter {
                rng: SimRng::new(seed),
            }),
            GlobalPolicyKind::Deferred { max_outstanding } => {
                Box::new(DeferredRouter { max_outstanding })
            }
            GlobalPolicyKind::PriorityAware { max_outstanding } => {
                Box::new(PriorityAwareRouter { max_outstanding })
            }
            GlobalPolicyKind::FairShare { max_outstanding } => Box::new(FairShareRouter {
                max_outstanding,
                weights: weights.to_vec(),
                vtime: Vec::new(),
                vfloor: 0.0,
            }),
            GlobalPolicyKind::Affinity { spill_margin } => Box::new(AffinityRouter {
                spill_margin,
                home: Vec::new(),
            }),
            GlobalPolicyKind::KvAware => Box::new(KvAwareRouter),
        };
        RoutingTier {
            kind,
            router,
            view: RouterView::new(num_replicas),
            deferred: VecDeque::new(),
            seq: 0,
            tenants: Vec::new(),
            total_routed_tokens: 0,
            weights: weights.to_vec(),
        }
    }

    /// The policy this tier runs.
    pub fn kind(&self) -> GlobalPolicyKind {
        self.kind
    }

    /// The live replica-state view (read access for drivers and tests).
    pub fn view(&self) -> &RouterView {
        &self.view
    }

    /// Requests currently held by the deferring policy.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Per-tenant routing statistics accumulated so far (index = tenant id).
    pub fn tenant_stats(&self) -> &[TenantRouting] {
        &self.tenants
    }

    /// Routes an arriving request. `Some(replica)` means the caller must
    /// dispatch it there now; `None` means the tier holds it — the caller
    /// re-polls via [`RoutingTier::next_ready`] whenever load drops.
    pub fn route(&mut self, req: RouteRequest) -> Option<usize> {
        self.router.on_arrival(&req, &self.view);
        *self.view.tenant_entry(req.tenant) += 1;
        self.tenant_stats_entry(req.tenant);
        match self.router.try_place(&req, &self.view) {
            Some(target) => {
                self.commit(&req, target);
                Some(target)
            }
            None => {
                self.tenants[req.tenant as usize].deferred += 1;
                self.deferred
                    .push_back(DeferredEntry { req, seq: self.seq });
                self.seq += 1;
                None
            }
        }
    }

    /// Routes an arriving request onto a caller-chosen replica, bypassing
    /// the policy's placement decision but performing every other side
    /// effect of [`RoutingTier::route`] (arrival hook, view counts, tenant
    /// stats, dispatch accounting). The speculative sharded router uses this
    /// to replay verified-correct placements into a throwaway tier clone
    /// when re-speculating a window after a misprediction.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn route_forced(&mut self, req: RouteRequest, target: usize) {
        assert!(target < self.view.num_replicas(), "forced target in range");
        self.router.on_arrival(&req, &self.view);
        *self.view.tenant_entry(req.tenant) += 1;
        self.tenant_stats_entry(req.tenant);
        self.commit(&req, target);
    }

    /// Binds and returns the next deferred request the policy is willing to
    /// place, or `None` when the queue is empty or every held request must
    /// keep waiting. Call in a loop after completions free capacity.
    pub fn next_ready(&mut self) -> Option<(RouteRequest, usize)> {
        if self.deferred.is_empty() {
            return None;
        }
        let idx = {
            let slice = self.deferred.make_contiguous();
            self.router.select_deferred(slice, &self.view)?
        };
        let req = self.deferred[idx].req;
        let target = self.router.try_place(&req, &self.view)?;
        self.deferred.remove(idx);
        self.commit(&req, target);
        Some((req, target))
    }

    /// Records that a previously dispatched request of `tenant` carrying
    /// `tokens` total tokens finished on `replica`.
    ///
    /// # Panics
    ///
    /// Panics if the view never saw a dispatch to `replica` (a driver bug).
    pub fn on_finished(&mut self, replica: usize, tenant: u32, tokens: u64) {
        let load = &mut self.view.replicas[replica];
        assert!(load.outstanding > 0, "finish without dispatch on {replica}");
        load.outstanding -= 1;
        load.outstanding_tokens = load.outstanding_tokens.saturating_sub(tokens);
        let t = self.view.tenant_entry(tenant);
        *t = t.saturating_sub(1);
    }

    /// Publishes a replica's current free KV block count into the view
    /// (an observable signal for KV-aware policies; optional).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn set_free_kv_blocks(&mut self, replica: usize, blocks: u64) {
        self.view.replicas[replica].free_kv_blocks = blocks;
    }

    /// Publishes the expected prefix-cache hit tokens per replica for the
    /// *next* request offered to [`RoutingTier::route`]. The scratch is
    /// per-arrival advisory state: drivers that route on hits refresh it
    /// before every `route` call, and runs without a prefix cache never
    /// call it (leaving every hit at 0, which no shipped policy acts on).
    ///
    /// # Panics
    ///
    /// Panics if `hits.len()` differs from the replica count.
    pub fn set_route_prefix_hits(&mut self, hits: &[u64]) {
        assert_eq!(
            hits.len(),
            self.view.prefix_hits.len(),
            "one hit entry per replica"
        );
        self.view.prefix_hits.copy_from_slice(hits);
    }

    /// Sets a replica's membership state and, on a change, notifies the
    /// policy so it can migrate replica references (affinity homes). The
    /// driver is responsible for evicting/requeueing the replica's work —
    /// the tier only stops (or resumes) routing to it.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn set_health(&mut self, replica: usize, health: ReplicaHealth) {
        if self.view.set_health(replica, health) {
            self.router.on_membership_change(&self.view);
        }
    }

    /// Membership state of `replica`.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn health(&self, replica: usize) -> ReplicaHealth {
        self.view.health(replica)
    }

    /// Fraction of the weighted fair share `tenant` actually received:
    /// `(tokens_t / total_tokens) / (w_t / Σ w)` over tenants that routed
    /// anything. 1.0 is exact attainment; `None` for non-fair-share policies
    /// or before any tokens routed.
    pub fn fair_share_attainment(&self, tenant: u32) -> Option<f64> {
        if !matches!(self.kind, GlobalPolicyKind::FairShare { .. }) {
            return None;
        }
        if self.total_routed_tokens == 0 {
            return None;
        }
        let stat = self.tenants.get(tenant as usize)?;
        let weight = |t: usize| {
            let w = self.weights.get(t).copied().unwrap_or(1.0);
            if w > 0.0 {
                w
            } else {
                1.0
            }
        };
        let total_weight: f64 = (0..self.tenants.len()).map(weight).sum();
        let share = stat.tokens as f64 / self.total_routed_tokens as f64;
        let entitled = weight(tenant as usize) / total_weight;
        Some(share / entitled)
    }

    fn tenant_stats_entry(&mut self, tenant: u32) -> &mut TenantRouting {
        let idx = tenant as usize;
        if idx >= self.tenants.len() {
            self.tenants.resize(idx + 1, TenantRouting::default());
        }
        &mut self.tenants[idx]
    }

    fn commit(&mut self, req: &RouteRequest, target: usize) {
        let load = &mut self.view.replicas[target];
        load.outstanding += 1;
        load.outstanding_tokens += req.tokens;
        let stat = self.tenant_stats_entry(req.tenant);
        stat.routed += 1;
        stat.tokens += req.tokens;
        self.total_routed_tokens += req.tokens;
        self.router.on_dispatch(req, target, &self.view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(key: u64, tenant: u32, priority: u8, tokens: u64) -> RouteRequest {
        RouteRequest {
            key,
            tenant,
            priority,
            tokens,
        }
    }

    #[test]
    fn round_robin_cycles_like_seed() {
        let mut tier = RoutingTier::new(GlobalPolicyKind::RoundRobin, 4, 0, &[]);
        let picks: Vec<Option<usize>> = (0..8).map(|i| tier.route(req(i, 0, 0, 10))).collect();
        let expect: Vec<Option<usize>> =
            [0, 1, 2, 3, 0, 1, 2, 3].iter().map(|&r| Some(r)).collect();
        assert_eq!(picks, expect);
    }

    #[test]
    fn least_outstanding_tracks_incremental_view() {
        let mut tier = RoutingTier::new(GlobalPolicyKind::LeastOutstanding, 3, 0, &[]);
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(1, 0, 0, 10)), Some(1));
        assert_eq!(tier.route(req(2, 0, 0, 10)), Some(2));
        assert_eq!(tier.route(req(3, 0, 0, 10)), Some(0));
        tier.on_finished(2, 0, 10);
        assert_eq!(tier.route(req(4, 0, 0, 10)), Some(2));
        assert_eq!(tier.view().outstanding(0), 2);
        assert_eq!(tier.view().outstanding(2), 1);
    }

    #[test]
    fn random_matches_legacy_stream() {
        use crate::global::GlobalPolicy;
        let mut legacy = GlobalPolicy::new(GlobalPolicyKind::Random, 4, 9);
        let mut tier = RoutingTier::new(GlobalPolicyKind::Random, 4, 9, &[]);
        for i in 0..64 {
            assert_eq!(Some(legacy.route(&[0; 4])), tier.route(req(i, 0, 0, 1)));
        }
    }

    #[test]
    fn deferred_holds_and_drains_fifo() {
        let kind = GlobalPolicyKind::Deferred { max_outstanding: 1 };
        let mut tier = RoutingTier::new(kind, 2, 0, &[]);
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(1, 0, 0, 10)), Some(1));
        assert_eq!(tier.route(req(2, 0, 0, 10)), None);
        assert_eq!(tier.route(req(3, 0, 0, 10)), None);
        assert_eq!(tier.deferred_len(), 2);
        assert!(tier.next_ready().is_none(), "both replicas saturated");
        tier.on_finished(1, 0, 10);
        let (r, target) = tier.next_ready().expect("capacity freed");
        assert_eq!((r.key, target), (2, 1));
        assert!(tier.next_ready().is_none());
        tier.on_finished(0, 0, 10);
        let (r, target) = tier.next_ready().expect("second drain");
        assert_eq!((r.key, target), (3, 0));
    }

    #[test]
    fn priority_aware_binds_urgent_tier_first() {
        let kind = GlobalPolicyKind::PriorityAware { max_outstanding: 1 };
        let mut tier = RoutingTier::new(kind, 1, 0, &[]);
        assert_eq!(tier.route(req(0, 0, 1, 10)), Some(0));
        // Held: bulk (prio 2) arrives before urgent (prio 0).
        assert_eq!(tier.route(req(1, 0, 2, 10)), None);
        assert_eq!(tier.route(req(2, 0, 0, 10)), None);
        tier.on_finished(0, 0, 10);
        let (r, _) = tier.next_ready().expect("drain");
        assert_eq!(r.key, 2, "most urgent waiting tier binds first");
        tier.on_finished(0, 0, 10);
        let (r, _) = tier.next_ready().expect("drain");
        assert_eq!(r.key, 1);
    }

    #[test]
    fn fair_share_prefers_light_tenant_under_contention() {
        let kind = GlobalPolicyKind::FairShare { max_outstanding: 1 };
        let mut tier = RoutingTier::new(kind, 1, 0, &[]);
        // Heavy tenant 0 floods; light tenant 1 sends one request later.
        assert_eq!(tier.route(req(0, 0, 0, 1000)), Some(0));
        assert_eq!(tier.route(req(1, 0, 0, 1000)), None);
        assert_eq!(tier.route(req(2, 0, 0, 1000)), None);
        assert_eq!(tier.route(req(3, 1, 0, 1000)), None);
        tier.on_finished(0, 0, 1000);
        let (r, _) = tier.next_ready().expect("drain");
        assert_eq!(r.key, 3, "light tenant has the smaller virtual time");
        tier.on_finished(0, 1, 1000);
        let (r, _) = tier.next_ready().expect("drain");
        assert_eq!(r.key, 1, "heavy tenant resumes FIFO");
    }

    #[test]
    fn fair_share_weights_scale_credit() {
        let kind = GlobalPolicyKind::FairShare { max_outstanding: 1 };
        // Tenant 0 weighs 4x tenant 1: after one dispatch each, tenant 0's
        // virtual time is smaller, so its next request binds first.
        let mut tier = RoutingTier::new(kind, 1, 0, &[4.0, 1.0]);
        assert_eq!(tier.route(req(0, 0, 0, 400)), Some(0));
        assert_eq!(tier.route(req(1, 1, 0, 400)), None);
        assert_eq!(tier.route(req(2, 0, 0, 400)), None);
        tier.on_finished(0, 0, 400);
        // vtime: tenant0 = 100, tenant1 = 0 -> tenant 1 first.
        let (r, _) = tier.next_ready().expect("drain");
        assert_eq!(r.key, 1);
        tier.on_finished(0, 1, 400);
        let (r, _) = tier.next_ready().expect("drain");
        assert_eq!(r.key, 2);
        let a0 = tier.fair_share_attainment(0).unwrap();
        let a1 = tier.fair_share_attainment(1).unwrap();
        // Tenant 0 routed 2/3 of tokens but is entitled to 4/5.
        assert!(a0 < 1.0 && a1 > 1.0, "{a0} {a1}");
    }

    #[test]
    fn fair_share_idle_tenant_catches_up() {
        let kind = GlobalPolicyKind::FairShare { max_outstanding: 2 };
        let mut tier = RoutingTier::new(kind, 1, 0, &[]);
        // Tenant 0 works for a long stretch while tenant 1 sleeps.
        for i in 0..50 {
            if tier.route(req(i, 0, 0, 100)).is_none() {
                tier.on_finished(0, 0, 100);
                tier.next_ready();
            }
        }
        while tier.view().outstanding(0) > 0 {
            tier.on_finished(0, 0, 100);
            tier.next_ready();
        }
        // Tenant 1 wakes: its clock catches up to the served floor, so it
        // gets at most a bounded advantage, not 50 requests' worth.
        assert_eq!(tier.route(req(100, 1, 0, 100)), Some(0));
        assert_eq!(tier.route(req(101, 0, 0, 100)), Some(0));
        assert_eq!(tier.route(req(102, 1, 0, 100)), None);
        assert_eq!(tier.route(req(103, 0, 0, 100)), None);
        tier.on_finished(0, 1, 100);
        let (r, _) = tier.next_ready().expect("drain");
        // One catch-up dispatch each: FIFO-by-vtime resumes, tenant 1's
        // second request is not owed the whole idle period.
        assert_eq!(r.key, 102);
    }

    #[test]
    fn affinity_sticks_until_spill() {
        let kind = GlobalPolicyKind::Affinity { spill_margin: 2 };
        let mut tier = RoutingTier::new(kind, 3, 0, &[]);
        // Tenant 0's first request pins it to replica 0.
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(1, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(2, 0, 0, 10)), Some(0));
        // Margin 2 exceeded (home 3 vs min 0): spill to least-loaded.
        assert_eq!(tier.route(req(3, 0, 0, 10)), Some(1));
        // Tenant 1 homes on the emptiest replica.
        assert_eq!(tier.route(req(4, 1, 0, 10)), Some(2));
        assert_eq!(tier.route(req(5, 1, 0, 10)), Some(2));
        // Home drains: tenant 0 goes home again.
        tier.on_finished(0, 0, 10);
        tier.on_finished(0, 0, 10);
        assert_eq!(tier.route(req(6, 0, 0, 10)), Some(0));
    }

    #[test]
    fn tenant_stats_accumulate() {
        let kind = GlobalPolicyKind::Deferred { max_outstanding: 1 };
        let mut tier = RoutingTier::new(kind, 1, 0, &[]);
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(1, 1, 0, 20)), None);
        tier.on_finished(0, 0, 10);
        tier.next_ready().expect("drain");
        let stats = tier.tenant_stats();
        assert_eq!(
            stats[0],
            TenantRouting {
                routed: 1,
                deferred: 0,
                tokens: 10
            }
        );
        assert_eq!(
            stats[1],
            TenantRouting {
                routed: 1,
                deferred: 1,
                tokens: 20
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        RoutingTier::new(GlobalPolicyKind::RoundRobin, 0, 0, &[]);
    }

    #[test]
    fn round_robin_skips_non_live_replicas() {
        let mut tier = RoutingTier::new(GlobalPolicyKind::RoundRobin, 4, 0, &[]);
        tier.set_health(1, ReplicaHealth::Down);
        tier.set_health(3, ReplicaHealth::Draining);
        let picks: Vec<Option<usize>> = (0..4).map(|i| tier.route(req(i, 0, 0, 10))).collect();
        assert_eq!(picks, vec![Some(0), Some(2), Some(0), Some(2)]);
        // Recovery folds the replica back into the cycle (3 still drains).
        tier.set_health(1, ReplicaHealth::Live);
        let picks: Vec<Option<usize>> = (4..8).map(|i| tier.route(req(i, 0, 0, 10))).collect();
        assert_eq!(picks, vec![Some(0), Some(1), Some(2), Some(0)]);
    }

    #[test]
    fn random_draws_only_live_replicas() {
        let mut tier = RoutingTier::new(GlobalPolicyKind::Random, 4, 9, &[]);
        tier.set_health(0, ReplicaHealth::Down);
        tier.set_health(2, ReplicaHealth::Warming);
        for i in 0..64 {
            let r = tier.route(req(i, 0, 0, 1)).expect("live replicas exist");
            assert!(r == 1 || r == 3, "drew non-live replica {r}");
        }
    }

    #[test]
    fn policies_defer_when_fleet_dark_and_recover() {
        for kind in [
            GlobalPolicyKind::RoundRobin,
            GlobalPolicyKind::LeastOutstanding,
            GlobalPolicyKind::Random,
            GlobalPolicyKind::Deferred { max_outstanding: 4 },
            GlobalPolicyKind::PriorityAware { max_outstanding: 4 },
            GlobalPolicyKind::FairShare { max_outstanding: 4 },
            GlobalPolicyKind::Affinity { spill_margin: 2 },
            GlobalPolicyKind::KvAware,
        ] {
            let mut tier = RoutingTier::new(kind, 2, 7, &[]);
            tier.set_health(0, ReplicaHealth::Down);
            tier.set_health(1, ReplicaHealth::Down);
            assert_eq!(tier.route(req(0, 0, 0, 10)), None, "{kind:?}");
            assert!(tier.next_ready().is_none(), "{kind:?}");
            tier.set_health(1, ReplicaHealth::Live);
            let (r, target) = tier
                .next_ready()
                .unwrap_or_else(|| panic!("{kind:?} must drain the deferred queue on recovery"));
            assert_eq!((r.key, target), (0, 1), "{kind:?}");
        }
    }

    #[test]
    fn kv_aware_prefers_hits_then_free_kv_then_load() {
        let mut tier = RoutingTier::new(GlobalPolicyKind::KvAware, 3, 0, &[]);
        // No hits, no published KV: pure least-outstanding (lowest index).
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0));
        // Free-KV signal breaks the no-hit tie toward the roomiest replica.
        tier.set_free_kv_blocks(0, 10);
        tier.set_free_kv_blocks(1, 50);
        tier.set_free_kv_blocks(2, 30);
        assert_eq!(tier.route(req(1, 0, 0, 10)), Some(1));
        // A published hit dominates both free KV and load.
        tier.set_route_prefix_hits(&[0, 0, 64]);
        assert_eq!(tier.route(req(2, 0, 0, 10)), Some(2));
        // Hits beat bigger hits-free replicas; ties fall back to free KV.
        tier.set_route_prefix_hits(&[128, 0, 128]);
        tier.set_free_kv_blocks(2, 60);
        assert_eq!(tier.route(req(3, 0, 0, 10)), Some(2));
    }

    #[test]
    fn kv_aware_skips_non_live_replicas() {
        let mut tier = RoutingTier::new(GlobalPolicyKind::KvAware, 3, 0, &[]);
        tier.set_route_prefix_hits(&[512, 0, 0]);
        tier.set_health(0, ReplicaHealth::Down);
        let r = tier.route(req(0, 0, 0, 10)).expect("live replicas exist");
        assert_ne!(r, 0, "hits on a down replica must not attract work");
    }

    #[test]
    fn affinity_hit_on_home_overrides_spill() {
        let kind = GlobalPolicyKind::Affinity { spill_margin: 1 };
        let mut tier = RoutingTier::new(kind, 2, 0, &[]);
        // Tenant 0 homes on replica 0 and exceeds the spill margin.
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(1, 0, 0, 10)), Some(0));
        assert_eq!(tier.route(req(2, 0, 0, 10)), Some(1), "margin exceeded");
        // Same load, but now the home holds this request's prefix: stick.
        tier.set_route_prefix_hits(&[64, 0]);
        assert_eq!(tier.route(req(3, 0, 0, 10)), Some(0), "hit beats spill");
    }

    #[test]
    fn affinity_homes_migrate_on_drain() {
        let kind = GlobalPolicyKind::Affinity { spill_margin: 8 };
        let mut tier = RoutingTier::new(kind, 3, 0, &[]);
        assert_eq!(tier.route(req(0, 0, 0, 10)), Some(0), "tenant 0 homes on 0");
        assert_eq!(tier.route(req(1, 0, 0, 10)), Some(0));
        // Home drains: the sticky home migrates to a live replica and new
        // requests follow it there.
        tier.set_health(0, ReplicaHealth::Draining);
        let moved = tier.route(req(2, 0, 0, 10)).expect("live replicas exist");
        assert_ne!(moved, 0, "request followed the home off the drain");
        assert_eq!(tier.route(req(3, 0, 0, 10)), Some(moved), "new home sticks");
    }
}
