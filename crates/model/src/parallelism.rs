//! Tensor/pipeline parallelism configuration and sharding math (paper §2.2,
//! §4.1 "Automatic Profiling for Parallelism Strategies").
//!
//! Vidur incorporates domain knowledge about LLM parallelization: given a
//! declarative model spec it derives, per device, the sharded operator
//! dimensions. This is what lets the profiler cover every TP configuration
//! while measuring on a single GPU.

use crate::spec::{ModelSpec, SpecError};
use serde::{Deserialize, Serialize};

/// A replica's parallelization strategy: `tp` GPUs per tensor-parallel group
/// × `pp` pipeline stages. A replica uses `tp * pp` GPUs in total.
///
/// # Example
///
/// ```
/// use vidur_model::{ModelSpec, ParallelismConfig};
/// let par = ParallelismConfig::new(4, 2);
/// assert_eq!(par.gpus_per_replica(), 8);
/// let m = ModelSpec::llama2_70b();
/// assert!(par.validate_for(&m).is_ok());
/// assert_eq!(par.layers_per_stage(&m), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Tensor-parallel degree (GPUs each layer is sharded across).
    pub tensor_parallel: u32,
    /// Pipeline-parallel degree (consecutive-layer stages).
    pub pipeline_parallel: u32,
}

impl ParallelismConfig {
    /// Creates a configuration with the given TP and PP degrees.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(tensor_parallel: u32, pipeline_parallel: u32) -> Self {
        assert!(
            tensor_parallel > 0 && pipeline_parallel > 0,
            "parallel degrees must be positive"
        );
        ParallelismConfig {
            tensor_parallel,
            pipeline_parallel,
        }
    }

    /// Serial (no parallelism) configuration.
    pub fn serial() -> Self {
        Self::new(1, 1)
    }

    /// GPUs used by one replica.
    pub fn gpus_per_replica(&self) -> u32 {
        self.tensor_parallel * self.pipeline_parallel
    }

    /// Checks that the model can be sharded this way.
    ///
    /// # Errors
    ///
    /// Returns an error if TP does not divide the KV-head count (each device
    /// must own whole heads) or PP does not divide the layer count.
    pub fn validate_for(&self, model: &ModelSpec) -> Result<(), SpecError> {
        if !model.num_q_heads.is_multiple_of(self.tensor_parallel) {
            return Err(SpecError::new(format!(
                "tensor parallel degree {} does not divide query head count {}",
                self.tensor_parallel, model.num_q_heads
            )));
        }
        if !model.num_kv_heads.is_multiple_of(self.tensor_parallel)
            && !self.tensor_parallel.is_multiple_of(model.num_kv_heads)
        {
            return Err(SpecError::new(format!(
                "tensor parallel degree {} incompatible with {} KV heads",
                self.tensor_parallel, model.num_kv_heads
            )));
        }
        if !model.mlp_hidden_dim.is_multiple_of(self.tensor_parallel) {
            return Err(SpecError::new(format!(
                "tensor parallel degree {} does not divide MLP hidden dim {}",
                self.tensor_parallel, model.mlp_hidden_dim
            )));
        }
        if !model.num_layers.is_multiple_of(self.pipeline_parallel) {
            return Err(SpecError::new(format!(
                "pipeline parallel degree {} does not divide layer count {}",
                self.pipeline_parallel, model.num_layers
            )));
        }
        Ok(())
    }

    /// Transformer layers per pipeline stage.
    ///
    /// # Panics
    ///
    /// Panics if PP does not divide the layer count (use
    /// [`validate_for`](Self::validate_for) first).
    pub fn layers_per_stage(&self, model: &ModelSpec) -> u32 {
        assert_eq!(model.num_layers % self.pipeline_parallel, 0);
        model.num_layers / self.pipeline_parallel
    }

    /// Query heads owned by each TP rank.
    pub fn q_heads_per_device(&self, model: &ModelSpec) -> u64 {
        (model.num_q_heads / self.tensor_parallel).max(1) as u64
    }

    /// KV heads owned by each TP rank.
    ///
    /// When TP exceeds the KV-head count (possible with aggressive GQA
    /// sharding), heads are replicated so each rank still holds one.
    pub fn kv_heads_per_device(&self, model: &ModelSpec) -> u64 {
        (model.num_kv_heads / self.tensor_parallel).max(1) as u64
    }

    /// Sharded query projection width per device.
    pub fn q_dim_per_device(&self, model: &ModelSpec) -> u64 {
        self.q_heads_per_device(model) * model.head_dim as u64
    }

    /// Sharded key/value projection width per device (keys plus values is
    /// twice this).
    pub fn kv_dim_per_device(&self, model: &ModelSpec) -> u64 {
        self.kv_heads_per_device(model) * model.head_dim as u64
    }

    /// Sharded MLP hidden width per device.
    pub fn mlp_dim_per_device(&self, model: &ModelSpec) -> u64 {
        (model.mlp_hidden_dim / self.tensor_parallel) as u64
    }

    /// Sharded vocabulary width per device (LM head is column-sharded).
    pub fn vocab_per_device(&self, model: &ModelSpec) -> u64 {
        (model.vocab_size as u64).div_ceil(self.tensor_parallel as u64)
    }

    /// Model weight bytes resident on **one device**.
    pub fn weight_bytes_per_device(&self, model: &ModelSpec) -> f64 {
        let d = model.embed_dim as u64;
        let layer_params_sharded = {
            let qkv = d * (self.q_dim_per_device(model) + 2 * self.kv_dim_per_device(model));
            let attn_out = self.q_dim_per_device(model) * d;
            let mlp_projs: u64 = if model.gated_mlp { 3 } else { 2 };
            let mlp = mlp_projs * d * self.mlp_dim_per_device(model);
            qkv + attn_out + mlp + 2 * d
        };
        let layers_on_device = self.layers_per_stage(model) as u64;
        // Embedding lives on the first stage, LM head + final norm on the
        // last; we bill the max-loaded stage (they are balanced for the
        // paper's models, and memory planning must fit the worst stage).
        let embed = model.vocab_per_tp(self) * d;
        let head = self.vocab_per_device(model) * d + d;
        let edge = embed.max(head);
        ((layers_on_device * layer_params_sharded + edge) * model.dtype_bytes as u64) as f64
    }

    /// KV-cache bytes per token resident on **one device**: the layer
    /// dimension is split by PP and the head dimension by TP.
    pub fn kv_bytes_per_token_per_device(&self, model: &ModelSpec) -> u64 {
        2 * self.kv_dim_per_device(model)
            * model.dtype_bytes as u64
            * self.layers_per_stage(model) as u64
    }

    /// Enumerates all valid `(tp, pp)` combinations for `model` from the
    /// given candidate degrees.
    pub fn enumerate(model: &ModelSpec, tp_choices: &[u32], pp_choices: &[u32]) -> Vec<Self> {
        let mut out = Vec::new();
        for &tp in tp_choices {
            for &pp in pp_choices {
                if tp == 0 || pp == 0 {
                    continue;
                }
                let cfg = ParallelismConfig::new(tp, pp);
                if cfg.validate_for(model).is_ok() {
                    out.push(cfg);
                }
            }
        }
        out
    }
}

impl std::fmt::Display for ParallelismConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TP{}-PP{}", self.tensor_parallel, self.pipeline_parallel)
    }
}

impl ModelSpec {
    /// Vocabulary rows per TP rank for the (row-sharded) input embedding.
    pub(crate) fn vocab_per_tp(&self, par: &ParallelismConfig) -> u64 {
        (self.vocab_size as u64).div_ceil(par.tensor_parallel as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gpus_per_replica() {
        assert_eq!(ParallelismConfig::new(4, 2).gpus_per_replica(), 8);
        assert_eq!(ParallelismConfig::serial().gpus_per_replica(), 1);
    }

    #[test]
    fn validation_rules() {
        let m = ModelSpec::llama2_70b(); // 64 q heads, 8 kv heads, 80 layers
        assert!(ParallelismConfig::new(4, 1).validate_for(&m).is_ok());
        assert!(ParallelismConfig::new(8, 1).validate_for(&m).is_ok());
        assert!(ParallelismConfig::new(2, 4).validate_for(&m).is_ok());
        // 3 does not divide 64
        assert!(ParallelismConfig::new(3, 1).validate_for(&m).is_err());
        // 7 does not divide 80 layers
        assert!(ParallelismConfig::new(1, 7).validate_for(&m).is_err());
    }

    #[test]
    fn sharded_dims() {
        let m = ModelSpec::llama2_70b();
        let p = ParallelismConfig::new(4, 1);
        assert_eq!(p.q_heads_per_device(&m), 16);
        assert_eq!(p.kv_heads_per_device(&m), 2);
        assert_eq!(p.q_dim_per_device(&m), 16 * 128);
        assert_eq!(p.mlp_dim_per_device(&m), 28672 / 4);
    }

    #[test]
    fn gqa_head_replication_floor() {
        let m = ModelSpec::llama2_70b(); // 8 kv heads
        let p = ParallelismConfig::new(16, 1);
        // 16 ranks but 8 kv heads: each rank still holds one replicated head.
        assert_eq!(p.kv_heads_per_device(&m), 1);
    }

    #[test]
    fn layers_per_stage_splits_evenly() {
        let m = ModelSpec::llama2_70b();
        assert_eq!(ParallelismConfig::new(1, 4).layers_per_stage(&m), 20);
        assert_eq!(ParallelismConfig::new(1, 1).layers_per_stage(&m), 80);
    }

    #[test]
    fn weight_bytes_shrink_with_tp() {
        let m = ModelSpec::llama2_70b();
        let w1 = ParallelismConfig::new(1, 1).weight_bytes_per_device(&m);
        let w4 = ParallelismConfig::new(4, 1).weight_bytes_per_device(&m);
        assert!(w4 < w1 / 3.0, "w1={w1} w4={w4}");
        // Unsharded per-device weights should be close to the total model.
        let total = m.weight_bytes();
        assert!((w1 - total).abs() / total < 0.05, "w1={w1} total={total}");
    }

    #[test]
    fn kv_bytes_split_across_tp_and_pp() {
        let m = ModelSpec::llama2_7b();
        let serial = ParallelismConfig::serial().kv_bytes_per_token_per_device(&m);
        let tp2 = ParallelismConfig::new(2, 1).kv_bytes_per_token_per_device(&m);
        let pp2 = ParallelismConfig::new(1, 2).kv_bytes_per_token_per_device(&m);
        assert_eq!(serial, m.kv_bytes_per_token());
        assert_eq!(tp2, serial / 2);
        assert_eq!(pp2, serial / 2);
    }

    #[test]
    fn enumerate_filters_invalid() {
        let m = ModelSpec::llama2_70b();
        let configs = ParallelismConfig::enumerate(&m, &[1, 2, 3, 4], &[1, 2, 4, 7]);
        assert!(configs.iter().all(|c| c.validate_for(&m).is_ok()));
        assert!(!configs.contains(&ParallelismConfig::new(3, 1)));
        assert!(configs.contains(&ParallelismConfig::new(4, 4)));
    }

    #[test]
    fn display_format() {
        assert_eq!(ParallelismConfig::new(2, 4).to_string(), "TP2-PP4");
    }

    proptest! {
        #[test]
        fn weights_monotone_in_tp(tp_exp in 0u32..4) {
            let m = ModelSpec::llama2_70b();
            let tp = 1 << tp_exp;
            let cfg = ParallelismConfig::new(tp, 1);
            prop_assume!(cfg.validate_for(&m).is_ok());
            let w = cfg.weight_bytes_per_device(&m);
            let w_next = ParallelismConfig::new(tp * 2, 1).weight_bytes_per_device(&m);
            prop_assert!(w_next < w);
        }

        #[test]
        fn kv_per_device_times_world_covers_total(tp_exp in 0u32..3, pp_exp in 0u32..3) {
            let m = ModelSpec::llama2_7b(); // 32 kv heads, 32 layers
            let cfg = ParallelismConfig::new(1 << tp_exp, 1 << pp_exp);
            prop_assume!(cfg.validate_for(&m).is_ok());
            let per_dev = cfg.kv_bytes_per_token_per_device(&m);
            let world = cfg.gpus_per_replica() as u64;
            prop_assert_eq!(per_dev * world, m.kv_bytes_per_token());
        }
    }
}
