//! Declarative model specifications (paper §4.1, Figure 2 "Model Spec").
//!
//! A [`ModelSpec`] captures exactly the architectural choices that matter for
//! performance: layer count, embedding/hidden dims, attention head layout
//! (MHA vs GQA — the paper's Qwen-72B vs LLaMA2-70B comparison hinges on
//! this), and dtype width. Everything else (activation choice, norm flavour)
//! only changes small pointwise kernels and is folded into the generic
//! pointwise operators.

use serde::{Deserialize, Serialize};

/// A declarative LLM architecture specification.
///
/// # Example
///
/// ```
/// use vidur_model::ModelSpec;
/// let m = ModelSpec::llama2_70b();
/// assert_eq!(m.num_layers, 80);
/// assert!(m.uses_gqa());
/// // ~69B parameters
/// let params = m.total_params();
/// assert!(params > 6.5e10 && params < 7.2e10, "{params}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name, e.g. `"llama2-70b"`.
    pub name: String,
    /// Number of transformer blocks.
    pub num_layers: u32,
    /// Embedding (model) dimension `D`.
    pub embed_dim: u32,
    /// MLP hidden dimension `F`.
    pub mlp_hidden_dim: u32,
    /// Number of query attention heads.
    pub num_q_heads: u32,
    /// Number of key/value heads (`== num_q_heads` for MHA, fewer for GQA).
    pub num_kv_heads: u32,
    /// Per-head dimension (`embed_dim / num_q_heads` for all paper models).
    pub head_dim: u32,
    /// Vocabulary size `V`.
    pub vocab_size: u32,
    /// Whether the MLP is gated (SwiGLU-style, 3 projections) as in LLaMA.
    pub gated_mlp: bool,
    /// Maximum supported context length in tokens.
    pub max_position_embeddings: u32,
    /// Bytes per parameter/activation element (2 for fp16/bf16).
    pub dtype_bytes: u32,
}

impl ModelSpec {
    /// LLaMA2-7B (32 layers, MHA, 4096 dim).
    pub fn llama2_7b() -> Self {
        ModelSpec {
            name: "llama2-7b".to_string(),
            num_layers: 32,
            embed_dim: 4096,
            mlp_hidden_dim: 11008,
            num_q_heads: 32,
            num_kv_heads: 32,
            head_dim: 128,
            vocab_size: 32000,
            gated_mlp: true,
            max_position_embeddings: 4096,
            dtype_bytes: 2,
        }
    }

    /// LLaMA2-70B (80 layers, GQA with 8 KV heads, 8192 dim).
    pub fn llama2_70b() -> Self {
        ModelSpec {
            name: "llama2-70b".to_string(),
            num_layers: 80,
            embed_dim: 8192,
            mlp_hidden_dim: 28672,
            num_q_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            vocab_size: 32000,
            gated_mlp: true,
            max_position_embeddings: 4096,
            dtype_bytes: 2,
        }
    }

    /// InternLM-20B (60 layers, MHA with 40 heads, 5120 dim).
    pub fn internlm_20b() -> Self {
        ModelSpec {
            name: "internlm-20b".to_string(),
            num_layers: 60,
            embed_dim: 5120,
            mlp_hidden_dim: 13824,
            num_q_heads: 40,
            num_kv_heads: 40,
            head_dim: 128,
            vocab_size: 103168,
            gated_mlp: true,
            max_position_embeddings: 4096,
            dtype_bytes: 2,
        }
    }

    /// Qwen-72B (80 layers, **MHA** — 64 KV heads, hence the 8× higher
    /// KV-cache load vs LLaMA2-70B the paper highlights in §7.3).
    pub fn qwen_72b() -> Self {
        ModelSpec {
            name: "qwen-72b".to_string(),
            num_layers: 80,
            embed_dim: 8192,
            mlp_hidden_dim: 24576,
            num_q_heads: 64,
            num_kv_heads: 64,
            head_dim: 128,
            vocab_size: 152064,
            gated_mlp: true,
            max_position_embeddings: 4096,
            dtype_bytes: 2,
        }
    }

    /// LLaMA2-13B (40 layers, MHA, 5120 dim) — not in the paper's main
    /// evaluation but part of the LLaMA2 family Vidur onboards trivially.
    pub fn llama2_13b() -> Self {
        ModelSpec {
            name: "llama2-13b".to_string(),
            num_layers: 40,
            embed_dim: 5120,
            mlp_hidden_dim: 13824,
            num_q_heads: 40,
            num_kv_heads: 40,
            head_dim: 128,
            vocab_size: 32000,
            gated_mlp: true,
            max_position_embeddings: 4096,
            dtype_bytes: 2,
        }
    }

    /// Falcon-40B (60 layers, aggressive GQA — 8 KV heads over 128 query
    /// heads — ungated GeLU MLP). Exercises the non-gated MLP path and an
    /// extreme GQA ratio.
    pub fn falcon_40b() -> Self {
        ModelSpec {
            name: "falcon-40b".to_string(),
            num_layers: 60,
            embed_dim: 8192,
            mlp_hidden_dim: 32768,
            num_q_heads: 128,
            num_kv_heads: 8,
            head_dim: 64,
            vocab_size: 65024,
            gated_mlp: false,
            max_position_embeddings: 2048,
            dtype_bytes: 2,
        }
    }

    /// Phi-2 (2.7B: 32 layers, MHA, 2560 dim, ungated MLP) — a small model
    /// whose iterations are CPU-overhead dominated, useful for studying the
    /// fidelity floor.
    pub fn phi_2() -> Self {
        ModelSpec {
            name: "phi-2".to_string(),
            num_layers: 32,
            embed_dim: 2560,
            mlp_hidden_dim: 10240,
            num_q_heads: 32,
            num_kv_heads: 32,
            head_dim: 80,
            vocab_size: 51200,
            gated_mlp: false,
            max_position_embeddings: 2048,
            dtype_bytes: 2,
        }
    }

    /// All four models evaluated in the paper, smallest first.
    pub fn paper_models() -> Vec<ModelSpec> {
        vec![
            Self::llama2_7b(),
            Self::internlm_20b(),
            Self::llama2_70b(),
            Self::qwen_72b(),
        ]
    }

    /// Every built-in model (the paper's four plus extras).
    pub fn all_models() -> Vec<ModelSpec> {
        vec![
            Self::phi_2(),
            Self::llama2_7b(),
            Self::llama2_13b(),
            Self::internlm_20b(),
            Self::falcon_40b(),
            Self::llama2_70b(),
            Self::qwen_72b(),
        ]
    }

    /// Looks a built-in model up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ModelSpec> {
        Self::all_models()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant, e.g. KV heads
    /// not dividing query heads.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.num_layers == 0 {
            return Err(SpecError::new("num_layers must be positive"));
        }
        if self.num_q_heads == 0 || self.num_kv_heads == 0 {
            return Err(SpecError::new("head counts must be positive"));
        }
        if !self.num_q_heads.is_multiple_of(self.num_kv_heads) {
            return Err(SpecError::new("num_kv_heads must divide num_q_heads"));
        }
        if self.embed_dim != self.num_q_heads * self.head_dim {
            return Err(SpecError::new(
                "embed_dim must equal num_q_heads * head_dim",
            ));
        }
        if self.dtype_bytes == 0 {
            return Err(SpecError::new("dtype_bytes must be positive"));
        }
        Ok(())
    }

    /// Returns `true` if the model uses grouped-query attention
    /// (fewer KV heads than query heads).
    pub fn uses_gqa(&self) -> bool {
        self.num_kv_heads < self.num_q_heads
    }

    /// Query projection output width (`num_q_heads * head_dim`).
    pub fn q_dim(&self) -> u64 {
        self.num_q_heads as u64 * self.head_dim as u64
    }

    /// Key/value projection output width (`num_kv_heads * head_dim`).
    pub fn kv_dim(&self) -> u64 {
        self.num_kv_heads as u64 * self.head_dim as u64
    }

    /// Parameters in one transformer layer.
    pub fn params_per_layer(&self) -> u64 {
        let d = self.embed_dim as u64;
        let f = self.mlp_hidden_dim as u64;
        let qkv = d * (self.q_dim() + 2 * self.kv_dim());
        let attn_out = self.q_dim() * d;
        let mlp_projs = if self.gated_mlp { 3 } else { 2 };
        let mlp = mlp_projs * d * f;
        // Two RMSNorm weight vectors per block.
        qkv + attn_out + mlp + 2 * d
    }

    /// Total parameter count (layers + embeddings + LM head + final norm).
    pub fn total_params(&self) -> f64 {
        let d = self.embed_dim as u64;
        let v = self.vocab_size as u64;
        let layers = self.num_layers as u64 * self.params_per_layer();
        // Input embedding + untied LM head + final norm.
        (layers + 2 * v * d + d) as f64
    }

    /// Bytes of model weights at the spec dtype.
    pub fn weight_bytes(&self) -> f64 {
        self.total_params() * self.dtype_bytes as f64
    }

    /// Bytes of KV-cache per token across **all** layers (unsharded).
    ///
    /// `2 (K and V) * kv_dim * dtype_bytes * num_layers`.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.kv_dim() * self.dtype_bytes as u64 * self.num_layers as u64
    }
}

/// Error returned when a [`ModelSpec`] violates an architectural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid model spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for m in ModelSpec::all_models() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn extra_model_param_counts() {
        let p13 = ModelSpec::llama2_13b().total_params();
        assert!(p13 > 1.2e10 && p13 < 1.4e10, "{p13}");
        let p40 = ModelSpec::falcon_40b().total_params();
        assert!(p40 > 3.4e10 && p40 < 4.6e10, "{p40}");
        let p2 = ModelSpec::phi_2().total_params();
        assert!(p2 > 2.2e9 && p2 < 3.2e9, "{p2}");
    }

    #[test]
    fn falcon_extreme_gqa() {
        let f = ModelSpec::falcon_40b();
        assert!(f.uses_gqa());
        assert_eq!(f.num_q_heads / f.num_kv_heads, 16);
        assert!(!f.gated_mlp);
    }

    #[test]
    fn llama7b_param_count() {
        let p = ModelSpec::llama2_7b().total_params();
        assert!(p > 6.5e9 && p < 7.1e9, "{p}");
    }

    #[test]
    fn llama70b_param_count() {
        let p = ModelSpec::llama2_70b().total_params();
        assert!(p > 6.5e10 && p < 7.2e10, "{p}");
    }

    #[test]
    fn internlm_param_count() {
        let p = ModelSpec::internlm_20b().total_params();
        assert!(p > 1.8e10 && p < 2.2e10, "{p}");
    }

    #[test]
    fn qwen_param_count() {
        let p = ModelSpec::qwen_72b().total_params();
        assert!(p > 6.6e10 && p < 7.5e10, "{p}");
    }

    #[test]
    fn qwen_kv_load_is_8x_llama70b() {
        let qwen = ModelSpec::qwen_72b();
        let llama = ModelSpec::llama2_70b();
        let ratio = qwen.kv_bytes_per_token() as f64 / llama.kv_bytes_per_token() as f64;
        assert_eq!(ratio, 8.0);
    }

    #[test]
    fn gqa_detection() {
        assert!(!ModelSpec::llama2_7b().uses_gqa());
        assert!(ModelSpec::llama2_70b().uses_gqa());
        assert!(!ModelSpec::internlm_20b().uses_gqa());
        assert!(!ModelSpec::qwen_72b().uses_gqa());
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(
            ModelSpec::by_name("LLaMA2-70B").map(|m| m.name),
            Some("llama2-70b".to_string())
        );
        assert!(ModelSpec::by_name("gpt-5").is_none());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut m = ModelSpec::llama2_7b();
        m.num_kv_heads = 5; // does not divide 32
        assert!(m.validate().is_err());

        let mut m = ModelSpec::llama2_7b();
        m.head_dim = 64; // embed_dim mismatch
        assert!(m.validate().is_err());

        let mut m = ModelSpec::llama2_7b();
        m.num_layers = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn kv_bytes_per_token_formula() {
        let m = ModelSpec::llama2_7b();
        // 2 * 32 heads * 128 dim * 2 bytes * 32 layers = 524288
        assert_eq!(m.kv_bytes_per_token(), 524_288);
    }

    #[test]
    fn serde_roundtrip() {
        let m = ModelSpec::qwen_72b();
        let json = serde_json::to_string(&m).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
