//! Batch composition and its reduction to operator invocations.
//!
//! A batch in iteration-level scheduling mixes prefill chunks and decode
//! tokens from many requests (paper §3 "Varying Iteration Times"). The
//! [`ExecutionPlan`] derived here is the *single* description of the work a
//! batch performs; both the hardware oracle (ground truth) and the runtime
//! estimator (prediction) consume it, so any fidelity gap comes from runtime
//! prediction — exactly the quantity the paper evaluates — and not from
//! disagreeing about what work runs.

use crate::operators::{OpInput, OpInvocation, Operator};
use crate::parallelism::ParallelismConfig;
use crate::shape::BatchShapeKey;
use crate::spec::ModelSpec;
use serde::{Deserialize, Serialize};

/// One request's contribution to a batch iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSlice {
    /// Opaque request identifier (for metrics attribution).
    pub request_id: u64,
    /// Tokens processed for this request in this iteration: a full or
    /// chunked prefill (> 1) or a single decode token (== 1).
    pub query_tokens: u64,
    /// Tokens already resident in the KV-cache for this request.
    pub cached_tokens: u64,
    /// Whether this slice is part of the prefill phase.
    pub is_prefill: bool,
}

impl RequestSlice {
    /// A prefill slice of `query_tokens` prompt tokens with `cached_tokens`
    /// already processed (non-zero under chunked prefill).
    pub fn prefill(request_id: u64, query_tokens: u64, cached_tokens: u64) -> Self {
        assert!(query_tokens > 0, "prefill slice needs at least one token");
        RequestSlice {
            request_id,
            query_tokens,
            cached_tokens,
            is_prefill: true,
        }
    }

    /// A decode slice: one new token attending over `cached_tokens` history.
    pub fn decode(request_id: u64, cached_tokens: u64) -> Self {
        RequestSlice {
            request_id,
            query_tokens: 1,
            cached_tokens,
            is_prefill: false,
        }
    }

    /// KV tokens this slice reads during attention.
    pub fn kv_read_tokens(&self) -> u64 {
        self.cached_tokens + self.query_tokens
    }
}

/// The composition of one batch iteration.
///
/// # Example
///
/// ```
/// use vidur_model::{BatchComposition, RequestSlice};
///
/// let batch = BatchComposition::new(vec![
///     RequestSlice::prefill(1, 512, 0),
///     RequestSlice::decode(2, 100),
///     RequestSlice::decode(3, 300),
/// ]);
/// assert_eq!(batch.total_query_tokens(), 514);
/// assert_eq!(batch.num_decode(), 2);
/// assert_eq!(batch.prefill_equivalent_length(), 512);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchComposition {
    slices: Vec<RequestSlice>,
}

impl BatchComposition {
    /// Creates a batch from request slices.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is empty: schedulers never emit empty batches.
    pub fn new(slices: Vec<RequestSlice>) -> Self {
        assert!(
            !slices.is_empty(),
            "a batch must contain at least one slice"
        );
        BatchComposition { slices }
    }

    /// The request slices in this batch.
    pub fn slices(&self) -> &[RequestSlice] {
        &self.slices
    }

    /// Consumes the batch, returning its slice storage — lets schedulers
    /// recycle the allocation for the next formed batch.
    pub fn into_slices(self) -> Vec<RequestSlice> {
        self.slices
    }

    /// Number of requests in the batch.
    pub fn num_requests(&self) -> usize {
        self.slices.len()
    }

    /// Number of prefill slices.
    pub fn num_prefill(&self) -> usize {
        self.slices.iter().filter(|s| s.is_prefill).count()
    }

    /// Number of decode slices.
    pub fn num_decode(&self) -> usize {
        self.slices.len() - self.num_prefill()
    }

    /// Total tokens processed this iteration (prefill + decode).
    pub fn total_query_tokens(&self) -> u64 {
        self.slices.iter().map(|s| s.query_tokens).sum()
    }

    /// Equivalent single-prefill length for the batch's prefill attention
    /// cost (paper §4.3): attention on a chunk of `p` new tokens with `h`
    /// cached tokens performs work ∝ `p·(p + 2h)` (each new token attends to
    /// all cached tokens plus the causal half of the chunk), so the batch is
    /// equivalent to one prefill of length `sqrt(Σ p_i (p_i + 2 h_i))`.
    pub fn prefill_equivalent_length(&self) -> u64 {
        let sum_sq: f64 = self
            .slices
            .iter()
            .filter(|s| s.is_prefill)
            .map(|s| (s.query_tokens * (s.query_tokens + 2 * s.cached_tokens)) as f64)
            .sum();
        sum_sq.sqrt().round() as u64
    }

    /// Total KV tokens read by decode attention across the batch.
    pub fn decode_kv_read_tokens(&self) -> u64 {
        self.slices
            .iter()
            .filter(|s| !s.is_prefill)
            .map(|s| s.kv_read_tokens())
            .sum()
    }

    /// Total KV-cache tokens resident for the batch's requests after the
    /// iteration completes (used by the memory manager / metrics).
    pub fn kv_tokens_after(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| s.cached_tokens + s.query_tokens)
            .sum()
    }
}

/// The operator invocations one pipeline stage executes for a batch, plus
/// plan-wide accounting. Produced by [`ExecutionPlan::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Invocations per pipeline stage, index 0 = first stage.
    stages: Vec<Vec<OpInvocation>>,
    /// Tokens processed this iteration.
    total_tokens: u64,
    /// Model FLOPs this batch performs across the whole replica (unsharded;
    /// used for MFU).
    model_flops: f64,
}

/// Builds the per-layer invocations shared by every pipeline stage of a
/// shape's plan. Split out of [`ExecutionPlan::for_shape`] so plan assembly
/// is reusable without duplicating the operator enumeration.
fn layer_invocations(
    model: &ModelSpec,
    par: &ParallelismConfig,
    shape: &BatchShapeKey,
) -> Vec<OpInvocation> {
    let tp = par.tensor_parallel;
    let d = model.embed_dim as u64;
    let dtype = model.dtype_bytes as u64;
    let tokens = shape.total_query_tokens();
    let layers = par.layers_per_stage(model);
    let q_dim = par.q_dim_per_device(model);
    let kv_dim = par.kv_dim_per_device(model);
    let mlp_dim = par.mlp_dim_per_device(model);

    let mut layer_ops: Vec<OpInvocation> = Vec::with_capacity(18);
    let mm = |op, k, n| OpInvocation::new(op, OpInput::Matmul { m: tokens, k, n }, layers);
    let pw = |op, width| OpInvocation::new(op, OpInput::Pointwise { tokens, width }, layers);
    layer_ops.push(pw(Operator::InputNorm, d));
    layer_ops.push(mm(Operator::QkvProj, d, q_dim + 2 * kv_dim));
    layer_ops.push(pw(Operator::Rope, q_dim + kv_dim));
    let equiv = shape.prefill_equivalent_length();
    if equiv > 0 {
        layer_ops.push(OpInvocation::new(
            Operator::AttnPrefill,
            OpInput::AttentionPrefill {
                equiv_len: equiv,
                q_heads: par.q_heads_per_device(model),
                head_dim: model.head_dim as u64,
            },
            layers,
        ));
    }
    let decode_kv_tokens = shape.decode_kv_read_tokens();
    if decode_kv_tokens > 0 {
        // Bytes fetched per layer on this device: K and V planes.
        let kv_bytes = decode_kv_tokens * 2 * kv_dim * dtype;
        layer_ops.push(OpInvocation::new(
            Operator::AttnDecode,
            OpInput::AttentionDecode {
                kv_bytes,
                tokens: shape.num_decode(),
            },
            layers,
        ));
    }
    layer_ops.push(pw(Operator::KvCacheSave, 2 * kv_dim));
    layer_ops.push(mm(Operator::AttnOutProj, q_dim, d));
    if tp > 1 {
        layer_ops.push(OpInvocation::new(
            Operator::AllReduce,
            OpInput::Comm {
                bytes: tokens * d * dtype,
                world: tp,
            },
            layers,
        ));
    }
    layer_ops.push(pw(Operator::ResidualAdd, d));
    layer_ops.push(pw(Operator::PostAttnNorm, d));
    layer_ops.push(mm(Operator::MlpUpProj, d, mlp_dim));
    if model.gated_mlp {
        layer_ops.push(mm(Operator::MlpGateProj, d, mlp_dim));
    }
    layer_ops.push(pw(Operator::MlpActivation, mlp_dim));
    layer_ops.push(mm(Operator::MlpDownProj, mlp_dim, d));
    if tp > 1 {
        layer_ops.push(OpInvocation::new(
            Operator::AllReduce,
            OpInput::Comm {
                bytes: tokens * d * dtype,
                world: tp,
            },
            layers,
        ));
    }
    layer_ops.push(pw(Operator::ResidualAdd, d));
    layer_ops
}

impl ExecutionPlan {
    /// Builds the per-stage operator invocation list for `batch` on a
    /// replica running `model` with parallelism `par`.
    ///
    /// Delegates through the batch's [`BatchShapeKey`]: the plan (and hence
    /// every predicted stage time) is a function of the shape alone, which
    /// is what makes shape-keyed memoization exact.
    ///
    /// # Panics
    ///
    /// Panics if the parallelism configuration is invalid for the model
    /// (validate configurations at construction time).
    pub fn build(model: &ModelSpec, par: &ParallelismConfig, batch: &BatchComposition) -> Self {
        ExecutionPlan::for_shape(model, par, &BatchShapeKey::from_batch(batch))
    }

    /// Builds the plan for a batch *shape* (see [`ExecutionPlan::build`]).
    ///
    /// # Panics
    ///
    /// Panics if the parallelism configuration is invalid for the model.
    pub fn for_shape(model: &ModelSpec, par: &ParallelismConfig, shape: &BatchShapeKey) -> Self {
        par.validate_for(model)
            .expect("parallelism config must be valid for model");
        let d = model.embed_dim as u64;
        let dtype = model.dtype_bytes as u64;
        let tokens = shape.total_query_tokens();
        let num_stages = par.pipeline_parallel as usize;
        let layer_ops = layer_invocations(model, par, shape);

        let mut stages = Vec::with_capacity(num_stages);
        for stage in 0..num_stages {
            let mut ops = Vec::with_capacity(layer_ops.len() + 4);
            if stage == 0 {
                ops.push(OpInvocation::new(
                    Operator::Embedding,
                    OpInput::Pointwise { tokens, width: d },
                    1,
                ));
            }
            ops.extend(layer_ops.iter().copied());
            if stage == num_stages - 1 {
                // Logits are computed only for each sequence's last position.
                let seqs = shape.num_requests();
                ops.push(OpInvocation::new(
                    Operator::FinalNorm,
                    OpInput::Pointwise {
                        tokens: seqs,
                        width: d,
                    },
                    1,
                ));
                ops.push(OpInvocation::new(
                    Operator::LmHead,
                    OpInput::Matmul {
                        m: seqs,
                        k: d,
                        n: par.vocab_per_device(model),
                    },
                    1,
                ));
            } else {
                // Hand activations to the next stage.
                ops.push(OpInvocation::new(
                    Operator::SendRecv,
                    OpInput::Comm {
                        bytes: tokens * d * dtype,
                        world: 2,
                    },
                    1,
                ));
            }
            stages.push(ops);
        }

        let model_flops = crate::flops::shape_flops(model, shape);
        ExecutionPlan {
            stages,
            total_tokens: tokens,
            model_flops,
        }
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Invocations for stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stage(&self, i: usize) -> &[OpInvocation] {
        &self.stages[i]
    }

    /// Iterates over all invocations across stages.
    pub fn iter(&self) -> impl Iterator<Item = &OpInvocation> {
        self.stages.iter().flatten()
    }

    /// Enumerates every invocation with its pipeline-stage index, in stage
    /// order — the traversal a per-stage timing sweep performs (see
    /// [`crate::shape::PlanTiming`]), exposed so consumers never rebuild the
    /// plan just to walk it.
    pub fn enumerate(&self) -> impl Iterator<Item = (usize, &OpInvocation)> {
        self.stages
            .iter()
            .enumerate()
            .flat_map(|(stage, ops)| ops.iter().map(move |inv| (stage, inv)))
    }

    /// Tokens processed this iteration.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Whole-replica model FLOPs for MFU accounting.
    pub fn model_flops(&self) -> f64 {
        self.model_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_batch() -> BatchComposition {
        BatchComposition::new(vec![
            RequestSlice::prefill(1, 256, 0),
            RequestSlice::prefill(2, 128, 512), // chunked continuation
            RequestSlice::decode(3, 1000),
            RequestSlice::decode(4, 50),
        ])
    }

    #[test]
    fn batch_accounting() {
        let b = sample_batch();
        assert_eq!(b.total_query_tokens(), 256 + 128 + 2);
        assert_eq!(b.num_prefill(), 2);
        assert_eq!(b.num_decode(), 2);
        assert_eq!(b.decode_kv_read_tokens(), 1001 + 51);
        assert_eq!(b.kv_tokens_after(), 256 + 640 + 1001 + 51);
    }

    #[test]
    fn equivalent_prefill_formula() {
        // Single prefill without history: equivalent length is itself.
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 512, 0)]);
        assert_eq!(b.prefill_equivalent_length(), 512);
        // Two equal prefills: sqrt(2) * p.
        let b = BatchComposition::new(vec![
            RequestSlice::prefill(1, 300, 0),
            RequestSlice::prefill(2, 300, 0),
        ]);
        assert_eq!(
            b.prefill_equivalent_length(),
            ((2.0f64 * 300.0 * 300.0).sqrt().round()) as u64
        );
        // History makes a chunk more expensive: p(p + 2h).
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 100, 450)]);
        assert_eq!(
            b.prefill_equivalent_length(),
            ((100.0f64 * (100.0 + 900.0)).sqrt().round()) as u64
        );
    }

    #[test]
    fn decode_only_batch_has_no_prefill_op() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::serial();
        let b = BatchComposition::new(vec![RequestSlice::decode(1, 64)]);
        let plan = ExecutionPlan::build(&model, &par, &b);
        assert!(plan.iter().all(|inv| inv.op != Operator::AttnPrefill));
        assert!(plan.iter().any(|inv| inv.op == Operator::AttnDecode));
    }

    #[test]
    fn prefill_only_batch_has_no_decode_op() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::serial();
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 128, 0)]);
        let plan = ExecutionPlan::build(&model, &par, &b);
        assert!(plan.iter().any(|inv| inv.op == Operator::AttnPrefill));
        assert!(plan.iter().all(|inv| inv.op != Operator::AttnDecode));
    }

    #[test]
    fn tp1_has_no_collectives() {
        let model = ModelSpec::llama2_7b();
        let plan = ExecutionPlan::build(&model, &ParallelismConfig::serial(), &sample_batch());
        assert!(plan.iter().all(|inv| inv.op != Operator::AllReduce));
        assert!(plan.iter().all(|inv| inv.op != Operator::SendRecv));
        assert_eq!(plan.num_stages(), 1);
    }

    #[test]
    fn tp2_has_two_allreduce_per_layer() {
        let model = ModelSpec::llama2_7b();
        let plan = ExecutionPlan::build(&model, &ParallelismConfig::new(2, 1), &sample_batch());
        let ar_invocations: Vec<_> = plan
            .iter()
            .filter(|inv| inv.op == Operator::AllReduce)
            .collect();
        assert_eq!(ar_invocations.len(), 2);
        assert!(ar_invocations.iter().all(|inv| inv.count == 32));
    }

    #[test]
    fn pp_stages_have_sendrecv_except_last() {
        let model = ModelSpec::llama2_7b();
        let plan = ExecutionPlan::build(&model, &ParallelismConfig::new(1, 4), &sample_batch());
        assert_eq!(plan.num_stages(), 4);
        for s in 0..3 {
            assert!(plan.stage(s).iter().any(|inv| inv.op == Operator::SendRecv));
        }
        assert!(plan.stage(3).iter().all(|inv| inv.op != Operator::SendRecv));
        // Embedding on the first stage only, LM head on the last only.
        assert!(plan.stage(0).iter().any(|i| i.op == Operator::Embedding));
        assert!(plan.stage(3).iter().any(|i| i.op == Operator::LmHead));
        assert!(plan.stage(1).iter().all(|i| i.op != Operator::Embedding));
        assert!(plan.stage(1).iter().all(|i| i.op != Operator::LmHead));
    }

    #[test]
    fn layer_counts_match_stage_split() {
        let model = ModelSpec::llama2_7b(); // 32 layers
        let plan = ExecutionPlan::build(&model, &ParallelismConfig::new(1, 2), &sample_batch());
        let qkv = plan
            .stage(0)
            .iter()
            .find(|i| i.op == Operator::QkvProj)
            .unwrap();
        assert_eq!(qkv.count, 16);
    }

    #[test]
    fn gated_mlp_toggles_gate_proj() {
        let mut model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::serial();
        let plan = ExecutionPlan::build(&model, &par, &sample_batch());
        assert!(plan.iter().any(|i| i.op == Operator::MlpGateProj));
        model.gated_mlp = false;
        let plan = ExecutionPlan::build(&model, &par, &sample_batch());
        assert!(plan.iter().all(|i| i.op != Operator::MlpGateProj));
    }

    #[test]
    fn matmul_dims_are_sharded() {
        let model = ModelSpec::llama2_70b();
        let par = ParallelismConfig::new(4, 1);
        let plan = ExecutionPlan::build(&model, &par, &sample_batch());
        let mlp_up = plan.iter().find(|i| i.op == Operator::MlpUpProj).unwrap();
        match mlp_up.input {
            OpInput::Matmul { m, k, n } => {
                assert_eq!(m, sample_batch().total_query_tokens());
                assert_eq!(k, 8192);
                assert_eq!(n, 28672 / 4);
            }
            other => panic!("unexpected input {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn empty_batch_panics() {
        BatchComposition::new(Vec::new());
    }

    proptest! {
        #[test]
        fn equiv_len_monotone_in_history(p in 1u64..2048, h1 in 0u64..2048, extra in 1u64..2048) {
            let b1 = BatchComposition::new(vec![RequestSlice::prefill(1, p, h1)]);
            let b2 = BatchComposition::new(vec![RequestSlice::prefill(1, p, h1 + extra)]);
            prop_assert!(b2.prefill_equivalent_length() >= b1.prefill_equivalent_length());
        }

        #[test]
        fn plan_tokens_match_batch(
            prefills in proptest::collection::vec((1u64..1024, 0u64..1024), 0..8),
            decodes in proptest::collection::vec(0u64..4096, 0..32),
        ) {
            prop_assume!(!prefills.is_empty() || !decodes.is_empty());
            let mut slices = Vec::new();
            let mut id = 0;
            for (p, h) in &prefills {
                slices.push(RequestSlice::prefill(id, *p, *h));
                id += 1;
            }
            for h in &decodes {
                slices.push(RequestSlice::decode(id, *h));
                id += 1;
            }
            let b = BatchComposition::new(slices);
            let model = ModelSpec::llama2_7b();
            let plan = ExecutionPlan::build(&model, &ParallelismConfig::serial(), &b);
            prop_assert_eq!(plan.total_tokens(), b.total_query_tokens());
            prop_assert!(plan.model_flops() > 0.0);
        }
    }
}
