//! Batch *shape* canonicalization and reusable plan timing — the memoization
//! seam of the runtime-prediction pipeline.
//!
//! Stage times depend only on what work a batch performs, never on which
//! requests perform it — and "what work" compresses further than the slice
//! list suggests. Every quantity [`ExecutionPlan::build`] reads from a
//! [`BatchComposition`] is one of five aggregates:
//!
//! * total query tokens (all token-level and communication operators),
//! * the prefill attention work `Σ pᵢ(pᵢ + 2hᵢ)` (paper §4.3's equivalent
//!   prefill length is its rounded square root),
//! * total decode KV tokens read (decode attention bytes),
//! * the decode slice count (decode attention's token operand),
//! * the request count (final-norm/LM-head rows).
//!
//! [`BatchShapeKey`] is exactly that tuple: request ids dropped, slice order
//! erased, *and* slice boundaries folded away — two batches whose aggregates
//! match share one execution plan and therefore one set of stage times, even
//! when their per-request splits differ. This makes the key both cheap (one
//! integer pass, no sorting) and far more reusable than a slice multiset.
//!
//! [`PlanTiming`] is the other half of the seam: the per-stage /
//! per-operator prediction sweep the simulation engine used to inline per
//! scheduled batch, hoisted here so a cache (see
//! `vidur_simulator::timing::StageTimer`) can compute it once per shape and
//! replay it bit-exactly.

use crate::batch::{BatchComposition, ExecutionPlan};
use crate::operators::Operator;
use crate::parallelism::ParallelismConfig;
use crate::runtime::RuntimePredictor;
use crate::spec::ModelSpec;

/// Canonical, request-id-free description of the work one batch iteration
/// performs: the exact aggregate features stage times depend on.
///
/// # Example
///
/// ```
/// use vidur_model::{BatchComposition, RequestSlice};
/// use vidur_model::shape::BatchShapeKey;
///
/// let a = BatchComposition::new(vec![
///     RequestSlice::prefill(1, 512, 0),
///     RequestSlice::decode(2, 100),
///     RequestSlice::decode(3, 300),
/// ]);
/// // Different ids, different order, different decode split with the same
/// // aggregate KV traffic: same shape, same stage times.
/// let b = BatchComposition::new(vec![
///     RequestSlice::decode(7, 200),
///     RequestSlice::decode(8, 200),
///     RequestSlice::prefill(9, 512, 0),
/// ]);
/// assert_eq!(BatchShapeKey::from_batch(&a), BatchShapeKey::from_batch(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BatchShapeKey {
    total_query_tokens: u64,
    num_requests: u64,
    num_decode: u64,
    /// `Σ pᵢ(pᵢ + 2hᵢ)` over prefill slices — the squared equivalent
    /// prefill length (exact, pre-rounding).
    prefill_work: u64,
    prefill_query_tokens: u64,
    decode_kv_read_tokens: u64,
}

/// Per-lane accumulator for the unrolled [`BatchShapeKey::from_batch`]
/// reduction. All five aggregates are sums of per-slice terms, so each term
/// can be computed branch-free (the prefill/decode split becomes a 0/1 mask
/// multiply) and the lanes summed in any order without changing the result —
/// u64 addition is associative, unlike the floating-point accumulations
/// elsewhere in the engine.
#[derive(Clone, Copy, Default)]
struct ShapeLane {
    total_query_tokens: u64,
    num_decode: u64,
    prefill_work: u64,
    prefill_query_tokens: u64,
    decode_kv_read_tokens: u64,
}

impl ShapeLane {
    #[inline(always)]
    fn accumulate(&mut self, s: &crate::batch::RequestSlice) {
        let q = s.query_tokens;
        let c = s.cached_tokens;
        let m = s.is_prefill as u64; // 1 for prefill, 0 for decode
        self.total_query_tokens += q;
        self.prefill_work += m * q * (q + 2 * c);
        self.prefill_query_tokens += m * q;
        self.num_decode += 1 - m;
        // kv_read_tokens() == c + q for any slice; masked out for prefill.
        self.decode_kv_read_tokens += (1 - m) * (c + q);
    }

    #[inline(always)]
    fn merge(self, other: ShapeLane) -> ShapeLane {
        ShapeLane {
            total_query_tokens: self.total_query_tokens + other.total_query_tokens,
            num_decode: self.num_decode + other.num_decode,
            prefill_work: self.prefill_work + other.prefill_work,
            prefill_query_tokens: self.prefill_query_tokens + other.prefill_query_tokens,
            decode_kv_read_tokens: self.decode_kv_read_tokens + other.decode_kv_read_tokens,
        }
    }
}

impl BatchShapeKey {
    /// Derives the shape of `batch` in one pass over its slices.
    ///
    /// The reduction runs four independent accumulator lanes over 4-slice
    /// chunks with the prefill/decode branch turned into a mask multiply, so
    /// the loop body is straight-line integer math with no carried
    /// dependency between neighbouring slices — the shape the
    /// auto-vectorizer (and the out-of-order core) wants. Bit-identical to
    /// the scalar single-lane reduction by associativity of `u64` addition.
    pub fn from_batch(batch: &BatchComposition) -> Self {
        let slices = batch.slices();
        let mut lanes = [ShapeLane::default(); 4];
        let mut chunks = slices.chunks_exact(4);
        for chunk in &mut chunks {
            lanes[0].accumulate(&chunk[0]);
            lanes[1].accumulate(&chunk[1]);
            lanes[2].accumulate(&chunk[2]);
            lanes[3].accumulate(&chunk[3]);
        }
        for s in chunks.remainder() {
            lanes[0].accumulate(s);
        }
        let folded = lanes[0].merge(lanes[1]).merge(lanes[2].merge(lanes[3]));
        BatchShapeKey {
            total_query_tokens: folded.total_query_tokens,
            num_requests: batch.num_requests() as u64,
            num_decode: folded.num_decode,
            prefill_work: folded.prefill_work,
            prefill_query_tokens: folded.prefill_query_tokens,
            decode_kv_read_tokens: folded.decode_kv_read_tokens,
        }
    }

    /// The original scalar reduction, kept as the differential reference
    /// for the unrolled fast path (see the `unrolled_key_matches_scalar`
    /// proptest).
    #[doc(hidden)]
    pub fn from_batch_scalar(batch: &BatchComposition) -> Self {
        let mut key = BatchShapeKey {
            total_query_tokens: 0,
            num_requests: batch.num_requests() as u64,
            num_decode: 0,
            prefill_work: 0,
            prefill_query_tokens: 0,
            decode_kv_read_tokens: 0,
        };
        for s in batch.slices() {
            key.total_query_tokens += s.query_tokens;
            if s.is_prefill {
                key.prefill_work += s.query_tokens * (s.query_tokens + 2 * s.cached_tokens);
                key.prefill_query_tokens += s.query_tokens;
            } else {
                key.num_decode += 1;
                key.decode_kv_read_tokens += s.kv_read_tokens();
            }
        }
        key
    }

    /// Total tokens processed by a batch of this shape.
    pub fn total_query_tokens(&self) -> u64 {
        self.total_query_tokens
    }

    /// Requests (slices) in the batch.
    pub fn num_requests(&self) -> u64 {
        self.num_requests
    }

    /// Decode slices in the batch.
    pub fn num_decode(&self) -> u64 {
        self.num_decode
    }

    /// `Σ pᵢ(pᵢ + 2hᵢ)` over prefill slices.
    pub fn prefill_work(&self) -> u64 {
        self.prefill_work
    }

    /// Prompt tokens processed this iteration (prefill slices only).
    pub fn prefill_query_tokens(&self) -> u64 {
        self.prefill_query_tokens
    }

    /// Total KV tokens read by decode attention.
    pub fn decode_kv_read_tokens(&self) -> u64 {
        self.decode_kv_read_tokens
    }

    /// Equivalent single-prefill length (paper §4.3): `√(Σ pᵢ(pᵢ + 2hᵢ))`,
    /// rounded. Matches [`BatchComposition::prefill_equivalent_length`].
    pub fn prefill_equivalent_length(&self) -> u64 {
        (self.prefill_work as f64).sqrt().round() as u64
    }
}

/// The predicted timing of one execution plan: per-stage critical-path
/// seconds, the per-operator attribution totals, and plan-wide accounting.
///
/// This is the engine's former inline build-plan/predict/accumulate loop as
/// a value: computing it is the expensive step a shape cache memoizes, and
/// replaying `op_secs` reproduces the metrics attribution of an uncached
/// run exactly (and in O(#operators) rather than O(#invocations)).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTiming {
    stage_secs: Vec<f64>,
    op_secs: [f64; Operator::COUNT],
    model_flops: f64,
    total_tokens: u64,
}

impl PlanTiming {
    /// Sweeps `plan` through `predictor`, accumulating per-stage times and
    /// per-operator attribution totals (indexed by [`Operator::index`], in
    /// invocation order within each operator).
    ///
    /// With `async_pipeline_comm`, inter-stage [`Operator::SendRecv`]
    /// transfers are hidden behind compute: they still appear in `op_secs`
    /// (energy and operator metrics) but leave the stage's critical path.
    pub fn compute(
        plan: &ExecutionPlan,
        predictor: &dyn RuntimePredictor,
        async_pipeline_comm: bool,
    ) -> Self {
        let mut stage_secs = vec![0.0; plan.num_stages()];
        let mut op_secs = [0.0; Operator::COUNT];
        for (stage, inv) in plan.enumerate() {
            let t = predictor.invocation_time(inv);
            op_secs[inv.op.index()] += t;
            if async_pipeline_comm && inv.op == Operator::SendRecv {
                continue;
            }
            stage_secs[stage] += t;
        }
        PlanTiming {
            stage_secs,
            op_secs,
            model_flops: plan.model_flops(),
            total_tokens: plan.total_tokens(),
        }
    }

    /// Builds the plan for `shape` and computes its timing in one step (the
    /// shape-cache miss path: no [`BatchComposition`] needed).
    pub fn for_shape(
        model: &ModelSpec,
        par: &ParallelismConfig,
        shape: &BatchShapeKey,
        predictor: &dyn RuntimePredictor,
        async_pipeline_comm: bool,
    ) -> Self {
        let plan = ExecutionPlan::for_shape(model, par, shape);
        PlanTiming::compute(&plan, predictor, async_pipeline_comm)
    }

    /// Builds the plan for `batch` and computes its timing in one step.
    pub fn for_batch(
        model: &ModelSpec,
        par: &ParallelismConfig,
        batch: &BatchComposition,
        predictor: &dyn RuntimePredictor,
        async_pipeline_comm: bool,
    ) -> Self {
        PlanTiming::for_shape(
            model,
            par,
            &BatchShapeKey::from_batch(batch),
            predictor,
            async_pipeline_comm,
        )
    }

    /// Per-stage critical-path seconds (before CPU overhead).
    pub fn stage_secs(&self) -> &[f64] {
        &self.stage_secs
    }

    /// Total predicted seconds per operator, indexed by
    /// [`Operator::index`] (for metrics replay).
    pub fn op_secs(&self) -> &[f64; Operator::COUNT] {
        &self.op_secs
    }

    /// Whole-replica model FLOPs for MFU accounting.
    pub fn model_flops(&self) -> f64 {
        self.model_flops
    }

    /// Tokens processed this iteration.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RequestSlice;
    use crate::operators::OpInvocation;

    /// Charges 1 µs per operator execution.
    struct Flat;
    impl RuntimePredictor for Flat {
        fn op_time(&self, _inv: &OpInvocation) -> f64 {
            1e-6
        }
    }

    fn mixed_batch() -> BatchComposition {
        BatchComposition::new(vec![
            RequestSlice::prefill(10, 256, 0),
            RequestSlice::decode(11, 1000),
            RequestSlice::prefill(12, 128, 512),
            RequestSlice::decode(13, 50),
        ])
    }

    #[test]
    fn key_drops_request_ids_and_order() {
        let a = mixed_batch();
        let mut reversed: Vec<RequestSlice> = a.slices().to_vec();
        reversed.reverse();
        for (i, s) in reversed.iter_mut().enumerate() {
            s.request_id = 1_000 + i as u64;
        }
        let b = BatchComposition::new(reversed);
        assert_eq!(BatchShapeKey::from_batch(&a), BatchShapeKey::from_batch(&b));
    }

    #[test]
    fn key_folds_equivalent_decode_splits() {
        // Same aggregate KV traffic, different per-request split: decode
        // attention reads the same bytes, so stage times coincide.
        let a = BatchComposition::new(vec![
            RequestSlice::decode(1, 100),
            RequestSlice::decode(2, 300),
        ]);
        let b = BatchComposition::new(vec![
            RequestSlice::decode(3, 200),
            RequestSlice::decode(4, 200),
        ]);
        assert_eq!(BatchShapeKey::from_batch(&a), BatchShapeKey::from_batch(&b));
    }

    #[test]
    fn different_work_different_key() {
        let a = BatchComposition::new(vec![RequestSlice::decode(1, 100)]);
        let b = BatchComposition::new(vec![RequestSlice::decode(1, 101)]);
        assert_ne!(BatchShapeKey::from_batch(&a), BatchShapeKey::from_batch(&b));
        let c = BatchComposition::new(vec![RequestSlice::prefill(1, 1, 100)]);
        assert_ne!(BatchShapeKey::from_batch(&a), BatchShapeKey::from_batch(&c));
    }

    #[test]
    fn key_aggregates_match_batch_accounting() {
        let b = mixed_batch();
        let key = BatchShapeKey::from_batch(&b);
        assert_eq!(key.total_query_tokens(), b.total_query_tokens());
        assert_eq!(key.num_requests(), b.num_requests() as u64);
        assert_eq!(key.num_decode(), b.num_decode() as u64);
        assert_eq!(key.decode_kv_read_tokens(), b.decode_kv_read_tokens());
        assert_eq!(
            key.prefill_equivalent_length(),
            b.prefill_equivalent_length()
        );
        assert_eq!(key.prefill_query_tokens(), 256 + 128);
    }

    #[test]
    fn plan_from_shape_equals_plan_from_batch() {
        let model = ModelSpec::llama2_7b();
        for par in [
            ParallelismConfig::serial(),
            ParallelismConfig::new(2, 1),
            ParallelismConfig::new(1, 4),
        ] {
            let batch = mixed_batch();
            let via_batch = ExecutionPlan::build(&model, &par, &batch);
            let via_shape =
                ExecutionPlan::for_shape(&model, &par, &BatchShapeKey::from_batch(&batch));
            assert_eq!(via_batch, via_shape);
        }
    }

    #[test]
    fn timing_matches_manual_stage_sweep() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::new(1, 2);
        let plan = ExecutionPlan::build(&model, &par, &mixed_batch());
        let timing = PlanTiming::compute(&plan, &Flat, false);
        assert_eq!(timing.stage_secs().len(), 2);
        for (stage, &secs) in timing.stage_secs().iter().enumerate() {
            let expect: f64 = plan
                .stage(stage)
                .iter()
                .map(|inv| Flat.invocation_time(inv))
                .sum();
            assert!((secs - expect).abs() < 1e-15);
        }
        // Flat charges 1 µs per execution, so total attributed time is the
        // total execution count (invocations × their repeat counts) × 1 µs.
        let total_execs: u64 = plan.enumerate().map(|(_, inv)| inv.count as u64).sum();
        let attributed: f64 = timing.op_secs().iter().sum();
        assert!((attributed - total_execs as f64 * 1e-6).abs() < 1e-9);
        assert_eq!(timing.model_flops(), plan.model_flops());
        assert_eq!(timing.total_tokens(), plan.total_tokens());
    }

    mod unrolled_matches_scalar {
        use super::*;
        use proptest::prelude::*;

        fn arb_slice() -> impl Strategy<Value = RequestSlice> {
            (1u64..4096, 0u64..8192, proptest::bool::ANY, 0u64..1_000).prop_map(
                |(q, cached, is_prefill, id)| {
                    if is_prefill {
                        RequestSlice::prefill(id, q, cached)
                    } else {
                        RequestSlice::decode(id, cached)
                    }
                },
            )
        }

        proptest! {
            /// The unrolled mask-select reduction must produce the exact
            /// same key as the scalar branchy reference for any slice mix
            /// and any length (covering all chunk remainders 0..=3).
            #[test]
            fn unrolled_key_matches_scalar(
                slices in proptest::collection::vec(arb_slice(), 1..40)
            ) {
                let batch = BatchComposition::new(slices);
                prop_assert_eq!(
                    BatchShapeKey::from_batch(&batch),
                    BatchShapeKey::from_batch_scalar(&batch)
                );
            }
        }
    }

    #[test]
    fn async_comm_leaves_critical_path_but_keeps_attribution() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::new(1, 4);
        let plan = ExecutionPlan::build(&model, &par, &mixed_batch());
        let sync = PlanTiming::compute(&plan, &Flat, false);
        let asynch = PlanTiming::compute(&plan, &Flat, true);
        // Attribution identical; non-final stages lose SendRecv time.
        assert_eq!(sync.op_secs(), asynch.op_secs());
        for s in 0..3 {
            assert!(asynch.stage_secs()[s] < sync.stage_secs()[s]);
        }
        assert_eq!(asynch.stage_secs()[3], sync.stage_secs()[3]);
    }
}
