//! Operator vocabulary and triage classes (paper §4.3 "Operator Triaging").
//!
//! Every batch an LLM serving system executes reduces to invocations of a
//! fixed, small operator set. The runtime of each operator is fully
//! determined by a compact *input descriptor* ([`OpInput`]): token-level
//! operators depend only on the iteration's token count, sequence-level
//! operators also see KV-cache state, and communication operators see bytes.
//! This is what makes sparse profiling + ML interpolation feasible.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Triage class of an operator (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Runtime depends only on tokens processed this iteration.
    TokenLevel,
    /// Runtime depends on per-request KV-cache history.
    SequenceLevel,
    /// Runtime depends only on bytes transferred.
    Communication,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::TokenLevel => "token-level",
            OpClass::SequenceLevel => "sequence-level",
            OpClass::Communication => "communication",
        };
        f.write_str(s)
    }
}

/// The operators Vidur models. One transformer block invokes most of these
/// once (attention and MLP matmuls, norms, residuals); embedding and LM head
/// run once per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Operator {
    /// Token embedding lookup.
    Embedding,
    /// Fused QKV projection matmul.
    QkvProj,
    /// Rotary position embedding application.
    Rope,
    /// Attention over prompt tokens (compute-bound, quadratic in length).
    AttnPrefill,
    /// Attention over cached context for decode tokens (memory-bound).
    AttnDecode,
    /// Appending this iteration's K/V to the cache.
    KvCacheSave,
    /// Attention output projection matmul.
    AttnOutProj,
    /// MLP up projection matmul.
    MlpUpProj,
    /// MLP gate projection matmul (gated MLPs only).
    MlpGateProj,
    /// MLP down projection matmul.
    MlpDownProj,
    /// Pointwise activation (SiLU/GeLU ⊙ gate).
    MlpActivation,
    /// Pre-attention RMSNorm.
    InputNorm,
    /// Pre-MLP RMSNorm.
    PostAttnNorm,
    /// Residual addition (two per block).
    ResidualAdd,
    /// Final RMSNorm before the LM head.
    FinalNorm,
    /// LM head projection onto the vocabulary.
    LmHead,
    /// Tensor-parallel all-reduce.
    AllReduce,
    /// Tensor-parallel all-gather.
    AllGather,
    /// Pipeline-parallel activation send/recv.
    SendRecv,
}

impl Operator {
    /// Number of distinct operators ([`Operator::ALL`]'s length).
    pub const COUNT: usize = 19;

    /// All operators, in canonical order.
    pub const ALL: [Operator; Operator::COUNT] = [
        Operator::Embedding,
        Operator::QkvProj,
        Operator::Rope,
        Operator::AttnPrefill,
        Operator::AttnDecode,
        Operator::KvCacheSave,
        Operator::AttnOutProj,
        Operator::MlpUpProj,
        Operator::MlpGateProj,
        Operator::MlpDownProj,
        Operator::MlpActivation,
        Operator::InputNorm,
        Operator::PostAttnNorm,
        Operator::ResidualAdd,
        Operator::FinalNorm,
        Operator::LmHead,
        Operator::AllReduce,
        Operator::AllGather,
        Operator::SendRecv,
    ];

    /// Position of this operator in [`Operator::ALL`] (stable array index
    /// for per-operator accumulators).
    pub fn index(self) -> usize {
        Operator::ALL
            .iter()
            .position(|o| *o == self)
            .expect("ALL covers every operator")
    }

    /// Triage class (paper §4.3).
    pub fn class(self) -> OpClass {
        match self {
            Operator::AttnPrefill | Operator::AttnDecode | Operator::KvCacheSave => {
                OpClass::SequenceLevel
            }
            Operator::AllReduce | Operator::AllGather | Operator::SendRecv => {
                OpClass::Communication
            }
            _ => OpClass::TokenLevel,
        }
    }

    /// Returns `true` for dense matrix-multiplication operators (profiled on
    /// the matmul path of the cost oracle, subject to tile quantization).
    pub fn is_matmul(self) -> bool {
        matches!(
            self,
            Operator::QkvProj
                | Operator::AttnOutProj
                | Operator::MlpUpProj
                | Operator::MlpGateProj
                | Operator::MlpDownProj
                | Operator::LmHead
        )
    }

    /// Short stable identifier used in profile tables and reports.
    pub fn id(self) -> &'static str {
        match self {
            Operator::Embedding => "embedding",
            Operator::QkvProj => "qkv_proj",
            Operator::Rope => "rope",
            Operator::AttnPrefill => "attn_prefill",
            Operator::AttnDecode => "attn_decode",
            Operator::KvCacheSave => "kv_cache_save",
            Operator::AttnOutProj => "attn_out_proj",
            Operator::MlpUpProj => "mlp_up_proj",
            Operator::MlpGateProj => "mlp_gate_proj",
            Operator::MlpDownProj => "mlp_down_proj",
            Operator::MlpActivation => "mlp_activation",
            Operator::InputNorm => "input_norm",
            Operator::PostAttnNorm => "post_attn_norm",
            Operator::ResidualAdd => "residual_add",
            Operator::FinalNorm => "final_norm",
            Operator::LmHead => "lm_head",
            Operator::AllReduce => "all_reduce",
            Operator::AllGather => "all_gather",
            Operator::SendRecv => "send_recv",
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The input descriptor that, together with the operator identity and the
/// (model, parallelism, SKU) context, fully determines a kernel's runtime.
///
/// Exactly one variant applies per operator class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpInput {
    /// Dense matmul `[m, k] x [k, n]` (already TP-sharded dims).
    Matmul {
        /// Rows of the activation matrix (tokens this iteration).
        m: u64,
        /// Inner dimension.
        k: u64,
        /// Output dimension.
        n: u64,
    },
    /// Pointwise/reduction op over `tokens * width` elements.
    Pointwise {
        /// Tokens this iteration.
        tokens: u64,
        /// Per-token element width (already TP-sharded where applicable).
        width: u64,
    },
    /// Prefill attention with an *equivalent* single-prefill length (paper
    /// §4.3: a batch of prefills of lengths `p_i` with cached context `h_i`
    /// costs like one prefill of length `sqrt(Σ p_i (p_i + 2 h_i))`).
    AttentionPrefill {
        /// Equivalent prefill length in tokens.
        equiv_len: u64,
        /// Number of query heads on this device.
        q_heads: u64,
        /// Per-head dimension.
        head_dim: u64,
    },
    /// Decode attention: memory-bound on total KV bytes fetched.
    AttentionDecode {
        /// Total KV-cache bytes read across the batch (this device).
        kv_bytes: u64,
        /// Decode tokens in the batch (one per running sequence).
        tokens: u64,
    },
    /// Collective/point-to-point communication of `bytes` across `world`
    /// participants.
    Comm {
        /// Payload bytes per participant.
        bytes: u64,
        /// Communicator size (TP degree, or 2 for send/recv).
        world: u32,
    },
}

impl OpInput {
    /// The scalar feature the runtime estimator keys on (paper §4.4 trains
    /// one model per operator over a single size feature).
    pub fn feature(&self) -> f64 {
        match *self {
            OpInput::Matmul { m, .. } => m as f64,
            OpInput::Pointwise { tokens, .. } => tokens as f64,
            OpInput::AttentionPrefill { equiv_len, .. } => equiv_len as f64,
            OpInput::AttentionDecode { kv_bytes, .. } => kv_bytes as f64,
            OpInput::Comm { bytes, .. } => bytes as f64,
        }
    }
}

/// One operator invocation: what runs, on what input, how many times
/// (e.g. once per transformer layer on the device).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpInvocation {
    /// Which operator.
    pub op: Operator,
    /// Its input descriptor.
    pub input: OpInput,
    /// Repetition count within the iteration (layers on device, etc.).
    pub count: u32,
}

impl OpInvocation {
    /// Creates an invocation executed `count` times.
    pub fn new(op: Operator, input: OpInput, count: u32) -> Self {
        OpInvocation { op, input, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triage_classes() {
        assert_eq!(Operator::QkvProj.class(), OpClass::TokenLevel);
        assert_eq!(Operator::MlpActivation.class(), OpClass::TokenLevel);
        assert_eq!(Operator::AttnPrefill.class(), OpClass::SequenceLevel);
        assert_eq!(Operator::AttnDecode.class(), OpClass::SequenceLevel);
        assert_eq!(Operator::KvCacheSave.class(), OpClass::SequenceLevel);
        assert_eq!(Operator::AllReduce.class(), OpClass::Communication);
        assert_eq!(Operator::SendRecv.class(), OpClass::Communication);
    }

    #[test]
    fn all_operators_have_unique_ids() {
        let mut ids: Vec<&str> = Operator::ALL.iter().map(|o| o.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Operator::ALL.len());
    }

    #[test]
    fn matmul_set() {
        let matmuls: Vec<Operator> = Operator::ALL
            .into_iter()
            .filter(|o| o.is_matmul())
            .collect();
        assert_eq!(matmuls.len(), 6);
        assert!(matmuls.contains(&Operator::LmHead));
        assert!(!Operator::AttnPrefill.is_matmul());
    }

    #[test]
    fn features_extracted() {
        assert_eq!(OpInput::Matmul { m: 7, k: 1, n: 1 }.feature(), 7.0);
        assert_eq!(
            OpInput::AttentionDecode {
                kv_bytes: 1024,
                tokens: 4
            }
            .feature(),
            1024.0
        );
        assert_eq!(
            OpInput::Comm {
                bytes: 99,
                world: 4
            }
            .feature(),
            99.0
        );
    }

    #[test]
    fn index_roundtrips() {
        for (i, op) in Operator::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn display_uses_id() {
        assert_eq!(Operator::MlpUpProj.to_string(), "mlp_up_proj");
        assert_eq!(OpClass::SequenceLevel.to_string(), "sequence-level");
    }
}
