//! The runtime-prediction interface shared by the hardware oracle (ground
//! truth) and the ML runtime estimator (prediction).
//!
//! The end-to-end simulator is generic over this trait: running it once with
//! the oracle and once with the estimator — same scheduler, same trace, same
//! seed — isolates runtime-prediction error, which is exactly the fidelity
//! quantity the paper's Figures 3, 4, 7 and 8 report.

use crate::batch::ExecutionPlan;
use crate::operators::OpInvocation;

/// Predicts operator execution times in seconds.
pub trait RuntimePredictor {
    /// Time for a single execution of the invocation's operator on its
    /// input (not multiplied by `count`).
    fn op_time(&self, inv: &OpInvocation) -> f64;

    /// Total time for an invocation including its repetition count.
    fn invocation_time(&self, inv: &OpInvocation) -> f64 {
        self.op_time(inv) * inv.count as f64
    }

    /// Total time for one pipeline stage of an execution plan.
    fn stage_time(&self, plan: &ExecutionPlan, stage: usize) -> f64 {
        plan.stage(stage)
            .iter()
            .map(|inv| self.invocation_time(inv))
            .sum()
    }

    /// Per-stage times for the whole plan.
    fn plan_stage_times(&self, plan: &ExecutionPlan) -> Vec<f64> {
        (0..plan.num_stages())
            .map(|s| self.stage_time(plan, s))
            .collect()
    }
}

impl<T: RuntimePredictor + ?Sized> RuntimePredictor for &T {
    fn op_time(&self, inv: &OpInvocation) -> f64 {
        (**self).op_time(inv)
    }
}

impl<T: RuntimePredictor + ?Sized> RuntimePredictor for Box<T> {
    fn op_time(&self, inv: &OpInvocation) -> f64 {
        (**self).op_time(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchComposition, RequestSlice};
    use crate::operators::{OpInput, Operator};
    use crate::parallelism::ParallelismConfig;
    use crate::spec::ModelSpec;

    /// A predictor charging 1 µs per operator execution.
    struct Flat;
    impl RuntimePredictor for Flat {
        fn op_time(&self, _inv: &OpInvocation) -> f64 {
            1e-6
        }
    }

    #[test]
    fn invocation_time_multiplies_count() {
        let inv = OpInvocation::new(Operator::QkvProj, OpInput::Matmul { m: 1, k: 1, n: 1 }, 32);
        assert!((Flat.invocation_time(&inv) - 32e-6).abs() < 1e-12);
    }

    #[test]
    fn stage_times_cover_all_stages() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::new(1, 2);
        let batch = BatchComposition::new(vec![RequestSlice::decode(1, 10)]);
        let plan = ExecutionPlan::build(&model, &par, &batch);
        let times = Flat.plan_stage_times(&plan);
        assert_eq!(times.len(), 2);
        assert!(times.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn trait_object_and_ref_forwarding() {
        let boxed: Box<dyn RuntimePredictor> = Box::new(Flat);
        let inv = OpInvocation::new(
            Operator::Rope,
            OpInput::Pointwise {
                tokens: 1,
                width: 1,
            },
            2,
        );
        assert_eq!(boxed.op_time(&inv), 1e-6);
        let by_ref: &dyn RuntimePredictor = &Flat;
        assert_eq!(by_ref.invocation_time(&inv), 2e-6);
    }
}
