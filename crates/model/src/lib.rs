//! # vidur-model
//!
//! Declarative LLM model specifications and the operator-level decomposition
//! Vidur simulates (paper §4.1–§4.3).
//!
//! The paper's key insight is that the large majority of LLMs share similar
//! architectures that decompose into a *small* set of operators, each falling
//! into one of three triage buckets:
//!
//! * **token-level** — runtime depends only on the number of tokens in the
//!   current iteration (all matmuls, pointwise ops, norms);
//! * **sequence-level** — runtime also depends on request history
//!   (attention prefill/decode over the KV-cache);
//! * **communication** — runtime depends only on bytes moved (all-reduce,
//!   all-gather, send/recv).
//!
//! This crate provides:
//!
//! * [`spec`] — the declarative [`ModelSpec`] format plus the four models the
//!   paper evaluates (LLaMA2-7B/70B, InternLM-20B, Qwen-72B);
//! * [`operators`] — the operator vocabulary, triage classes, and input
//!   descriptors;
//! * [`parallelism`] — tensor/pipeline parallel configuration and sharding
//!   math;
//! * [`memory`] — the memory planner that sizes weights and the paged
//!   KV-cache per device;
//! * [`batch`] — batch composition (mixed prefill/decode) and its reduction
//!   to operator invocations (the execution plan both the hardware oracle and
//!   the runtime estimator consume);
//! * [`shape`] — the canonical, request-id-free batch shape key and the
//!   reusable plan-timing sweep (the memoization seam of the prediction
//!   pipeline);
//! * [`flops`] — FLOP accounting used for MFU reporting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod flops;
pub mod memory;
pub mod operators;
pub mod parallelism;
pub mod runtime;
pub mod shape;
pub mod spec;

pub use batch::{BatchComposition, ExecutionPlan, RequestSlice};
pub use memory::MemoryPlan;
pub use operators::{OpClass, OpInvocation, Operator};
pub use parallelism::ParallelismConfig;
pub use runtime::RuntimePredictor;
pub use shape::{BatchShapeKey, PlanTiming};
pub use spec::ModelSpec;
