//! Memory planner (paper §4.5: "the replica scheduler contains a memory
//! planner, which uses the model specification and parallelism configuration
//! to compute the memory available for KV-Cache").
//!
//! The planner answers one question: given a GPU's memory capacity, how many
//! paged KV-cache blocks fit after model weights and an activation workspace
//! are reserved? The answer bounds every batching policy's admission logic.

use crate::parallelism::ParallelismConfig;
use crate::spec::{ModelSpec, SpecError};
use serde::{Deserialize, Serialize};

/// Default tokens per KV-cache block (vLLM's default page size).
pub const DEFAULT_BLOCK_SIZE: u32 = 16;

/// Fraction of post-weight memory reserved for activations/workspace.
pub const DEFAULT_ACTIVATION_RESERVE: f64 = 0.10;

/// The result of memory planning for one replica.
///
/// # Example
///
/// ```
/// use vidur_model::{MemoryPlan, ModelSpec, ParallelismConfig};
///
/// let model = ModelSpec::llama2_7b();
/// let par = ParallelismConfig::serial();
/// // 80 GB A100-class device
/// let plan = MemoryPlan::compute(&model, &par, 80.0e9, 16).unwrap();
/// assert!(plan.num_kv_blocks > 1_000);
/// assert!(plan.max_tokens() > 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Bytes of weights per device.
    pub weight_bytes: f64,
    /// Bytes reserved for activations/workspace per device.
    pub activation_bytes: f64,
    /// Bytes available for KV-cache per device.
    pub kv_cache_bytes: f64,
    /// KV bytes per token per device.
    pub kv_bytes_per_token: u64,
    /// Tokens per block.
    pub block_size: u32,
    /// Number of whole KV blocks that fit.
    pub num_kv_blocks: u64,
}

impl MemoryPlan {
    /// Plans memory for one replica device.
    ///
    /// The binding constraint is the *most loaded* pipeline stage; all
    /// devices within a stage are symmetric under TP.
    ///
    /// # Errors
    ///
    /// Returns an error if the parallelism configuration is invalid for the
    /// model or if the weights alone exceed device memory.
    pub fn compute(
        model: &ModelSpec,
        par: &ParallelismConfig,
        device_memory_bytes: f64,
        block_size: u32,
    ) -> Result<MemoryPlan, SpecError> {
        assert!(block_size > 0, "block size must be positive");
        par.validate_for(model)?;
        let weight_bytes = par.weight_bytes_per_device(model);
        if weight_bytes >= device_memory_bytes {
            return Err(SpecError::new(format!(
                "model weights ({:.1} GB/device) exceed device memory ({:.1} GB); \
                 increase TP/PP or pick a larger SKU",
                weight_bytes / 1e9,
                device_memory_bytes / 1e9
            )));
        }
        let after_weights = device_memory_bytes - weight_bytes;
        let activation_bytes = after_weights * DEFAULT_ACTIVATION_RESERVE;
        let kv_cache_bytes = after_weights - activation_bytes;
        let kv_bytes_per_token = par.kv_bytes_per_token_per_device(model);
        let block_bytes = kv_bytes_per_token * block_size as u64;
        let num_kv_blocks = if block_bytes == 0 {
            0
        } else {
            (kv_cache_bytes / block_bytes as f64).floor() as u64
        };
        if num_kv_blocks == 0 {
            return Err(SpecError::new(
                "no memory left for KV cache after weights and activations",
            ));
        }
        Ok(MemoryPlan {
            weight_bytes,
            activation_bytes,
            kv_cache_bytes,
            kv_bytes_per_token,
            block_size,
            num_kv_blocks,
        })
    }

    /// Maximum cached tokens per device.
    pub fn max_tokens(&self) -> u64 {
        self.num_kv_blocks * self.block_size as u64
    }

    /// Blocks needed to hold `tokens` cached tokens.
    pub fn blocks_for_tokens(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size as u64)
    }

    /// Fraction of KV capacity consumed by `tokens` cached tokens.
    pub fn utilization(&self, tokens: u64) -> f64 {
        if self.max_tokens() == 0 {
            0.0
        } else {
            tokens as f64 / self.max_tokens() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const GB: f64 = 1e9;

    #[test]
    fn llama7b_fits_on_one_a100() {
        let plan = MemoryPlan::compute(
            &ModelSpec::llama2_7b(),
            &ParallelismConfig::serial(),
            80.0 * GB,
            DEFAULT_BLOCK_SIZE,
        )
        .unwrap();
        // ~13.5 GB of weights leaves tens of GB of KV blocks.
        assert!(plan.weight_bytes > 12.0 * GB && plan.weight_bytes < 15.0 * GB);
        assert!(plan.max_tokens() > 100_000);
    }

    #[test]
    fn llama70b_needs_sharding() {
        let model = ModelSpec::llama2_70b();
        let err = MemoryPlan::compute(&model, &ParallelismConfig::serial(), 80.0 * GB, 16);
        assert!(err.is_err(), "70B cannot fit on one 80GB device");
        let ok = MemoryPlan::compute(&model, &ParallelismConfig::new(4, 1), 80.0 * GB, 16);
        assert!(ok.is_ok(), "70B fits at TP4: {ok:?}");
    }

    #[test]
    fn qwen_has_less_kv_capacity_than_llama70b() {
        let par = ParallelismConfig::new(4, 1);
        let qwen = MemoryPlan::compute(&ModelSpec::qwen_72b(), &par, 80.0 * GB, 16).unwrap();
        let llama = MemoryPlan::compute(&ModelSpec::llama2_70b(), &par, 80.0 * GB, 16).unwrap();
        // MHA means 8x KV bytes/token, so far fewer tokens fit.
        assert!(
            qwen.max_tokens() < llama.max_tokens() / 4,
            "qwen {} vs llama {}",
            qwen.max_tokens(),
            llama.max_tokens()
        );
    }

    #[test]
    fn blocks_for_tokens_rounds_up() {
        let plan = MemoryPlan::compute(
            &ModelSpec::llama2_7b(),
            &ParallelismConfig::serial(),
            80.0 * GB,
            16,
        )
        .unwrap();
        assert_eq!(plan.blocks_for_tokens(0), 0);
        assert_eq!(plan.blocks_for_tokens(1), 1);
        assert_eq!(plan.blocks_for_tokens(16), 1);
        assert_eq!(plan.blocks_for_tokens(17), 2);
    }

    #[test]
    fn utilization_bounds() {
        let plan = MemoryPlan::compute(
            &ModelSpec::llama2_7b(),
            &ParallelismConfig::serial(),
            80.0 * GB,
            16,
        )
        .unwrap();
        assert_eq!(plan.utilization(0), 0.0);
        assert!((plan.utilization(plan.max_tokens()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_tp_means_more_kv_blocks() {
        let model = ModelSpec::llama2_70b();
        let p4 = MemoryPlan::compute(&model, &ParallelismConfig::new(4, 1), 80.0 * GB, 16).unwrap();
        let p8 = MemoryPlan::compute(&model, &ParallelismConfig::new(8, 1), 80.0 * GB, 16).unwrap();
        // TP8 halves both weights and KV bytes/token per device, so more
        // tokens fit per device.
        assert!(p8.max_tokens() > p4.max_tokens());
    }

    proptest! {
        #[test]
        fn kv_accounting_consistent(mem_gb in 20.0f64..200.0, block_size in 1u32..64) {
            let model = ModelSpec::llama2_7b();
            let par = ParallelismConfig::serial();
            if let Ok(plan) = MemoryPlan::compute(&model, &par, mem_gb * GB, block_size) {
                let used = plan.num_kv_blocks as f64
                    * (plan.kv_bytes_per_token * block_size as u64) as f64;
                prop_assert!(used <= plan.kv_cache_bytes + 1.0);
                prop_assert!(plan.weight_bytes + plan.activation_bytes + plan.kv_cache_bytes
                    <= mem_gb * GB + 1.0);
            }
        }
    }
}
