//! FLOP accounting for Model-FLOPs-Utilization (MFU) reporting.
//!
//! MFU is defined against the *model's* useful FLOPs — the arithmetic a
//! perfect implementation would perform — divided by the hardware's peak.
//! These counts are unsharded: parallelism changes where FLOPs run, not how
//! many there are.

use crate::batch::BatchComposition;
use crate::spec::ModelSpec;

/// Matmul FLOPs per processed token for the dense (non-attention) part of
/// the network: 2 FLOPs per multiply-accumulate over every weight matrix.
pub fn dense_flops_per_token(model: &ModelSpec) -> f64 {
    let d = model.embed_dim as f64;
    let f = model.mlp_hidden_dim as f64;
    let q = model.q_dim() as f64;
    let kv = model.kv_dim() as f64;
    let per_layer = 2.0 * (d * (q + 2.0 * kv)) // qkv proj
        + 2.0 * (q * d) // attn out proj
        + 2.0 * (if model.gated_mlp { 3.0 } else { 2.0 }) * d * f; // mlp
    per_layer * model.num_layers as f64
}

/// Attention FLOPs for one request slice: score and value matmuls over the
/// causal context, per layer, summed across layers.
///
/// For `p` new tokens attending over `h` cached tokens the score matrix has
/// `p·(h + (p+1)/2)` entries (causal), each costing `2·head_dim` FLOPs for
/// scores and the same again for the value gather, across `num_q_heads`.
pub fn attention_flops(model: &ModelSpec, query_tokens: u64, cached_tokens: u64) -> f64 {
    let p = query_tokens as f64;
    let h = cached_tokens as f64;
    let entries = p * (h + (p + 1.0) / 2.0);
    let per_layer = 4.0 * entries * model.head_dim as f64 * model.num_q_heads as f64;
    per_layer * model.num_layers as f64
}

/// LM-head FLOPs for computing logits of `seqs` sequences.
pub fn lm_head_flops(model: &ModelSpec, seqs: u64) -> f64 {
    2.0 * seqs as f64 * model.embed_dim as f64 * model.vocab_size as f64
}

/// Total model FLOPs one batch iteration performs.
pub fn batch_flops(model: &ModelSpec, batch: &BatchComposition) -> f64 {
    let dense = dense_flops_per_token(model) * batch.total_query_tokens() as f64;
    let attn: f64 = batch
        .slices()
        .iter()
        .map(|s| attention_flops(model, s.query_tokens, s.cached_tokens))
        .sum();
    dense + attn + lm_head_flops(model, batch.num_requests() as u64)
}

/// [`batch_flops`] computed from a batch *shape* (the execution-plan path).
///
/// The per-slice attention sums fold into the shape's aggregates exactly:
/// a prefill slice's causal score entries are `p(h + (p+1)/2)
/// = (p(p+2h) + p) / 2` (the numerator is always even), and a decode
/// slice's are `h + 1`, its KV read. Mathematically equal to the per-slice
/// sum; floating-point association may differ in the last ulps.
pub fn shape_flops(model: &ModelSpec, shape: &crate::shape::BatchShapeKey) -> f64 {
    let dense = dense_flops_per_token(model) * shape.total_query_tokens() as f64;
    let entries =
        (shape.prefill_work() + shape.prefill_query_tokens()) / 2 + shape.decode_kv_read_tokens();
    let attn = 4.0
        * entries as f64
        * model.head_dim as f64
        * model.num_q_heads as f64
        * model.num_layers as f64;
    dense + attn + lm_head_flops(model, shape.num_requests())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RequestSlice;

    #[test]
    fn dense_flops_track_param_count() {
        // For large-dim models, dense FLOPs/token ≈ 2 * matmul params.
        let m = ModelSpec::llama2_7b();
        let flops = dense_flops_per_token(&m);
        let approx_params = 2.0 * m.total_params();
        // Embedding params don't do matmul FLOPs; expect within 15%.
        let ratio = flops / approx_params;
        assert!(ratio > 0.85 && ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn attention_flops_quadratic_in_prompt() {
        let m = ModelSpec::llama2_7b();
        let f1 = attention_flops(&m, 512, 0);
        let f2 = attention_flops(&m, 1024, 0);
        let ratio = f2 / f1;
        assert!(ratio > 3.8 && ratio < 4.2, "ratio {ratio}");
    }

    #[test]
    fn decode_flops_linear_in_context() {
        let m = ModelSpec::llama2_7b();
        let f1 = attention_flops(&m, 1, 1000);
        let f2 = attention_flops(&m, 1, 2000);
        let ratio = f2 / f1;
        assert!(ratio > 1.9 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn batch_flops_sum_parts() {
        let m = ModelSpec::llama2_7b();
        let b = BatchComposition::new(vec![
            RequestSlice::prefill(1, 100, 0),
            RequestSlice::decode(2, 500),
        ]);
        let total = batch_flops(&m, &b);
        let dense = dense_flops_per_token(&m) * 101.0;
        let attn = attention_flops(&m, 100, 0) + attention_flops(&m, 1, 500);
        let head = lm_head_flops(&m, 2);
        assert!((total - (dense + attn + head)).abs() < 1.0);
    }

    #[test]
    fn shape_flops_matches_batch_flops() {
        let m = ModelSpec::llama2_7b();
        let b = BatchComposition::new(vec![
            RequestSlice::prefill(1, 100, 0),
            RequestSlice::prefill(2, 33, 451),
            RequestSlice::decode(3, 500),
            RequestSlice::decode(4, 7),
        ]);
        let via_shape = shape_flops(&m, &crate::shape::BatchShapeKey::from_batch(&b));
        let via_slices = batch_flops(&m, &b);
        let rel = (via_shape - via_slices).abs() / via_slices;
        assert!(rel < 1e-12, "rel {rel}");
    }

    #[test]
    fn prefill_flops_dominated_by_dense_at_short_context() {
        let m = ModelSpec::llama2_7b();
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 128, 0)]);
        let total = batch_flops(&m, &b);
        let dense = dense_flops_per_token(&m) * 128.0;
        assert!(dense / total > 0.8);
    }
}
