//! Minimal JSON front-end for the local `serde` shim: renders
//! [`serde::Value`] trees as JSON text and parses JSON text back.
//!
//! Matches the subset of the real `serde_json` API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//! Non-finite floats serialize as `null` (they deserialize back as NaN).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.message().to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats (serde_json prints 1.0).
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            write_value,
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (key, val), indent, depth| {
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a standard emitter encodes
                                // non-BMP characters as a surrogate pair of
                                // `\uXXXX` escapes; combine them.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits starting at byte `start`.
    fn hex4(&self, start: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
            16,
        )
        .map_err(|_| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                // Fall back to float for huge magnitudes.
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb".to_string());
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u64, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn float_roundtrips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Standard emitters (e.g. Python's ensure_ascii=True) encode non-BMP
        // characters as surrogate pairs.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert!(
            from_str::<String>("\"\\ud83d\"").is_err(),
            "lone high surrogate"
        );
        assert!(
            from_str::<String>("\"\\ud83d\\u0041\"").is_err(),
            "bad low half"
        );
    }
}
