//! Minimal stand-in for `parking_lot` (the build has no network access):
//! wraps `std::sync` primitives with parking_lot's panic-free, guard-returning
//! API. Poisoning is ignored, matching parking_lot semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
