//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the local `serde` shim. No `syn`/`quote` (the build has no network), so
//! the item is parsed directly from the raw token stream.
//!
//! Supported: non-generic named-field structs, tuple structs, unit structs,
//! and enums whose variants are unit, tuple, or struct-like. The only field
//! attribute understood is `#[serde(skip)]` (skip on serialize, fill with
//! `Default::default()` on deserialize). Representation matches serde's
//! externally-tagged default:
//!
//! * struct        -> `{"field": ...}`
//! * newtype       -> inner value
//! * tuple struct  -> `[..]`
//! * unit variant  -> `"Variant"`
//! * tuple variant -> `{"Variant": value}` / `{"Variant": [..]}`
//! * struct variant-> `{"Variant": {"field": ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Body {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Item {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derives do not support generic type `{name}`");
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_elems(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    Item { name, body }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Collects attributes at `i`, returning whether `#[serde(skip)]` appeared,
/// then skips visibility.
fn collect_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if is_serde_skip(g) {
                        skip = true;
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return skip,
        }
    }
}

/// True for the bracketed body of `#[serde(skip)]`.
fn is_serde_skip(attr_body: &proc_macro::Group) -> bool {
    let mut inner = attr_body.stream().into_iter();
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skips a type (or any token run) up to the next top-level comma. Commas
/// inside groups are invisible (groups are atomic token trees); commas
/// inside generic angle brackets are tracked by `<`/`>` depth.
///
/// Angle tracking is heuristic: `->` return arrows are recognized and
/// skipped, but other unbalanced `<`/`>` puncts (e.g. a `1 << 2`
/// discriminant or a comparison in a const expression) make the depth end
/// up unbalanced — that panics loudly rather than silently swallowing the
/// following fields/variants.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    let mut prev_joint_minus = false;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                // The '>' of a `->` return arrow is not a closing bracket.
                '>' if !prev_joint_minus => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
            assert!(
                angle_depth >= 0,
                "serde shim derive: unbalanced '>' while parsing a type \
                 (unsupported token pattern near `{p}`)"
            );
            prev_joint_minus = p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
        } else {
            prev_joint_minus = false;
        }
        *i += 1;
    }
    assert!(
        angle_depth == 0,
        "serde shim derive: unbalanced '<' while parsing a type \
         (unsupported token pattern)"
    );
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = collect_attrs_and_vis(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1; // consume comma (or run off the end)
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_elems(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        collect_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        collect_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_elems(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                pushes.push_str(&format!(
                    "__obj.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            format!(
                "let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__obj)"
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(\
                         \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = &f.name;
                            pushes.push_str(&format!(
                                "__obj.push((\"{fname}\".to_string(), \
                                 ::serde::Serialize::to_value({fname})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Object(__obj))])\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{fname}: match __v.get(\"{fname}\") {{\n\
                         Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                         None => return Err(::serde::DeError::missing_field(\"{name}\", \"{fname}\")),\n\
                         }},\n"
                    ));
                }
            }
            format!(
                "if __v.as_object().is_none() {{\n\
                 return Err(::serde::DeError::custom(\"expected object for {name}\"));\n}}\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array()\
                 .ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\"));\n}}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::Unit => format!("Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"))
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => return Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __items = __inner.as_array()\
                             .ok_or_else(|| ::serde::DeError::custom(\"expected array\"))?;\n\
                             if __items.len() != {n} {{\n\
                             return Err(::serde::DeError::custom(\"wrong arity for {name}::{vname}\"));\n}}\n\
                             return Ok({name}::{vname}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let fname = &f.name;
                            if f.skip {
                                inits.push_str(&format!(
                                    "{fname}: ::std::default::Default::default(),\n"
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{fname}: match __inner.get(\"{fname}\") {{\n\
                                     Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                                     None => return Err(::serde::DeError::missing_field(\
                                     \"{name}::{vname}\", \"{fname}\")),\n\
                                     }},\n"
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => return Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                 match __s.as_str() {{\n{unit_arms}\
                 __other => return Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n}}\n}}\n\
                 if let Some(__entries) = __v.as_object() {{\n\
                 if __entries.len() == 1 {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => return Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n}}\n}}\n}}\n\
                 Err(::serde::DeError::custom(\"expected externally-tagged {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
