//! Minimal stand-in for `rayon` (the build has no network access). Supports
//! the `slice.par_iter().map(f).collect::<Vec<_>>()` pipeline the workspace
//! uses, executing the map on scoped `std::thread`s — contiguous chunks, one
//! per available core — and reassembling results in input order, so output is
//! deterministic regardless of scheduling. Also provides rayon's [`scope`]
//! API (over `std::thread::scope`) for long-lived workers, which the sharded
//! event loop uses to run one simulation shard per thread.

use std::num::NonZeroUsize;

/// Runs `f` with a [`Scope`] that can spawn borrowed worker closures; blocks
/// until every spawned closure has finished, like `rayon::scope`.
///
/// Backed by `std::thread::scope`, so each `spawn` is a real OS thread —
/// appropriate for the small number of long-lived workers the simulator
/// shards spawn, not for fine-grained tasks.
///
/// # Panics
///
/// Propagates a panic from any spawned worker.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Scope handle passed to the [`scope`] closure; mirrors `rayon::Scope`.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker that may borrow from the enclosing scope. Unlike
    /// rayon's signature the closure takes no re-entrant scope argument —
    /// none of the workspace's call sites nest spawns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// `rayon::prelude` — brings `par_iter` into scope.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: 'data;
    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
#[derive(Debug)]
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map across threads and collects results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("rayon shim worker panicked"));
            }
        });
        results.into_iter().flatten().collect::<Vec<R>>().into()
    }
}
