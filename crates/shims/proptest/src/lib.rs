//! Minimal stand-in for the `proptest` crate (the build has no network
//! access). Provides the `proptest!` macro and the strategy combinators this
//! workspace uses — numeric ranges, `collection::vec`, `Just`, `prop_oneof!`,
//! `any::<T>()`, `bool::ANY`, and strategy tuples — driven by a fast
//! deterministic xorshift RNG seeded from the test name, so failures are
//! reproducible. `prop_assert!`/`prop_assert_eq!` panic like their `assert`
//! cousins; `prop_assume!` skips the current case.

use std::ops::Range;

/// Cases generated per property (real proptest defaults to 256; kept smaller
/// so the full suite stays fast).
pub const NUM_CASES: u32 = 48;

/// Deterministic RNG for strategy sampling (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from a test name so each property gets a distinct but
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like proptest's `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Map").field(&self.inner).finish()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.0.len())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Strategy over both booleans.
    pub const ANY: AnyBool = AnyBool;

    impl super::Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector strategy over `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::prelude` — the glob import test modules use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: NUM_CASES }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs the configured number of cases of a property body (used by the
/// `proptest!` expansion).
pub fn run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::from_name(name);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

/// Asserts a property condition, panicking with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::OneOf(__arms)
    }};
}

/// Binds `name in strategy` parameters inside a generated test body.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $arg:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $arg = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident, mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $arg = $crate::Strategy::sample(&($strat), $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
    ($rng:ident, $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident, $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::sample(&($strat), $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies [`NUM_CASES`] times (or
/// the count from a leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($cfg), $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()), $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr),) => {};
    (($cfg:expr), ) => {};
    (
        ($cfg:expr),
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(&($cfg), stringify!($name), |__pt_rng| {
                $crate::__prop_bind!(__pt_rng, $($params)*);
                $body
            });
        }
        $crate::__proptest_impl!(($cfg), $($rest)*);
    };
}
