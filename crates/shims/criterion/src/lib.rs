//! Minimal stand-in for the `criterion` benchmark harness (the build has no
//! network access). Keeps the same API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`) but measures
//! with a simple best-of-N wall-clock loop and prints one line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Benchmarks a closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Benchmarks a closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration workload size (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window (ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `id` within the group.
    pub fn bench_function<N: IntoBenchmarkId, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, &mut f);
        self
    }

    /// Benchmarks a closure with an input within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Converts into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Per-iteration workload size hint.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Times `f`, keeping the best of a few runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then best-of-3 — enough for a smoke-level signal
        // without criterion's statistical machinery.
        black_box(f());
        for _ in 0..3 {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            if self.best.map(|b| elapsed < b).unwrap_or(true) {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    match b.best {
        Some(d) => println!("bench: {label:<60} {d:>12.3?}"),
        None => println!("bench: {label:<60} (no measurement)"),
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
