//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the narrow slice of serde it actually uses: a
//! value-tree data model (`Value`), `Serialize`/`Deserialize` traits that
//! convert to and from that tree, and derive macros (re-exported from the
//! local `serde_derive` shim) for plain structs and enums. The companion
//! `serde_json` shim renders the tree as JSON text and parses it back.
//!
//! Supported shapes: named-field structs, unit structs, tuple structs,
//! and enums with unit / tuple / struct variants (externally tagged, like
//! real serde). `#[serde(skip)]` on a field skips it during serialization
//! and fills it with `Default::default()` during deserialization. Generic
//! types are not supported by the derives.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both traits convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (negative) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the array elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Creates a "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Creates an "unknown variant" error.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for enum {ty}"))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    // Non-finite floats serialize as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + Default + Copy> Serialize for std::cell::Cell<T> {
    fn to_value(&self) -> Value {
        self.get().to_value()
    }
}
impl<T: Deserialize + Default + Copy> Deserialize for std::cell::Cell<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::cell::Cell::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v)?.collect()
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort entries by rendered key so serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v)?.collect()
    }
}

fn map_entries<'v, K: Deserialize, V: Deserialize>(
    v: &'v Value,
) -> Result<impl Iterator<Item = Result<(K, V), DeError>> + 'v, DeError> {
    let entries = v
        .as_object()
        .ok_or_else(|| DeError::custom("expected map object"))?;
    Ok(entries
        .iter()
        .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?))))
}

fn key_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key value: {other:?}"),
    }
}

/// Map keys always render as JSON object keys (strings); recover the typed
/// key by retrying the value forms a key can take.
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(v) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(v);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(v) = K::from_value(&Value::UInt(n)) {
            return Ok(v);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(v) = K::from_value(&Value::Int(n)) {
            return Ok(v);
        }
    }
    if let Ok(f) = key.parse::<f64>() {
        if let Ok(v) = K::from_value(&Value::Float(f)) {
            return Ok(v);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(v) = K::from_value(&Value::Bool(b)) {
            return Ok(v);
        }
    }
    Err(DeError::custom(format!("cannot parse map key `{key}`")))
}
