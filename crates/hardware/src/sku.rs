//! GPU SKU specifications.
//!
//! The paper evaluates on Azure `Standard_NC96ads_A100_v4` VMs (4× A100
//! 80 GB, pairwise NVLink) and equivalent 4× H100 VMs. Peak numbers below
//! are the public dense-FP16 figures for the SXM parts.

use serde::{Deserialize, Serialize};

/// A GPU stock-keeping unit with the peak capabilities the roofline oracle
/// needs.
///
/// # Example
///
/// ```
/// use vidur_hardware::GpuSku;
/// let a100 = GpuSku::a100_80g();
/// let h100 = GpuSku::h100_80g();
/// assert!(h100.peak_fp16_flops > 2.0 * a100.peak_fp16_flops);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSku {
    /// SKU name, e.g. `"a100-80g"`.
    pub name: String,
    /// Peak dense FP16/BF16 throughput in FLOP/s.
    pub peak_fp16_flops: f64,
    /// Peak HBM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory in bytes.
    pub memory_bytes: f64,
    /// Streaming multiprocessor count (for wave quantization).
    pub sm_count: u32,
    /// Per-direction NVLink bandwidth between paired GPUs, bytes/s.
    pub nvlink_bandwidth: f64,
    /// PCIe/fallback interconnect bandwidth, bytes/s.
    pub pcie_bandwidth: f64,
    /// Base kernel launch overhead in seconds.
    pub kernel_launch_overhead: f64,
    /// Rental price in dollars per GPU-hour (representative Azure list
    /// price; only relative cost matters for QPS/$ rankings).
    pub price_per_gpu_hour: f64,
    /// Board power at full load (TDP), watts — for the energy metrics the
    /// paper plans as a Vidur-Bench extension (§5.2).
    pub tdp_watts: f64,
    /// Board power when idle, watts.
    pub idle_watts: f64,
}

impl GpuSku {
    /// NVIDIA A100 80 GB SXM.
    pub fn a100_80g() -> Self {
        GpuSku {
            name: "a100-80g".to_string(),
            peak_fp16_flops: 312e12,
            mem_bandwidth: 2.039e12,
            memory_bytes: 80e9,
            sm_count: 108,
            nvlink_bandwidth: 300e9, // per direction, pairwise NVLink
            pcie_bandwidth: 32e9,
            kernel_launch_overhead: 4.5e-6,
            price_per_gpu_hour: 2.21,
            tdp_watts: 400.0,
            idle_watts: 60.0,
        }
    }

    /// NVIDIA H100 80 GB SXM.
    pub fn h100_80g() -> Self {
        GpuSku {
            name: "h100-80g".to_string(),
            peak_fp16_flops: 989e12,
            mem_bandwidth: 3.35e12,
            memory_bytes: 80e9,
            sm_count: 132,
            nvlink_bandwidth: 450e9,
            pcie_bandwidth: 64e9,
            kernel_launch_overhead: 4.0e-6,
            price_per_gpu_hour: 4.10,
            tdp_watts: 700.0,
            idle_watts: 75.0,
        }
    }

    /// The SKUs the paper's search explores.
    pub fn paper_skus() -> Vec<GpuSku> {
        vec![Self::a100_80g(), Self::h100_80g()]
    }

    /// Looks a paper SKU up by (case-insensitive) name, accepting both
    /// `"a100"` and `"a100-80g"` forms.
    pub fn by_name(name: &str) -> Option<GpuSku> {
        let lower = name.to_ascii_lowercase();
        Self::paper_skus()
            .into_iter()
            .find(|s| s.name == lower || s.name.starts_with(&lower))
    }

    /// Machine balance point (FLOPs per byte at which compute and memory
    /// cost equalize); inputs with lower arithmetic intensity are
    /// memory-bound.
    pub fn ridge_point(&self) -> f64 {
        self.peak_fp16_flops / self.mem_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_ridge_point_plausible() {
        let r = GpuSku::a100_80g().ridge_point();
        assert!(r > 100.0 && r < 250.0, "{r}");
    }

    #[test]
    fn h100_outclasses_a100() {
        let a = GpuSku::a100_80g();
        let h = GpuSku::h100_80g();
        assert!(h.peak_fp16_flops > a.peak_fp16_flops);
        assert!(h.mem_bandwidth > a.mem_bandwidth);
        assert!(h.price_per_gpu_hour > a.price_per_gpu_hour);
    }

    #[test]
    fn by_name_prefix() {
        assert_eq!(GpuSku::by_name("A100").unwrap().name, "a100-80g");
        assert_eq!(GpuSku::by_name("h100-80g").unwrap().name, "h100-80g");
        assert!(GpuSku::by_name("tpu").is_none());
    }

    #[test]
    fn power_specs_sane() {
        for sku in GpuSku::paper_skus() {
            assert!(sku.idle_watts > 0.0 && sku.idle_watts < sku.tdp_watts);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = GpuSku::a100_80g();
        let json = serde_json::to_string(&s).unwrap();
        let back: GpuSku = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
