//! # vidur-hardware
//!
//! GPU SKU specifications and the **kernel cost oracle** — this repository's
//! substitute for the paper's real A100/H100 testbed (see DESIGN.md,
//! "Substitutions").
//!
//! The oracle computes, for every operator invocation produced by
//! [`vidur_model::ExecutionPlan`], a deterministic "ground truth" execution
//! time from a roofline model (compute vs memory bound) augmented with the
//! non-ideal effects that make real CUDA kernel runtimes *non-linear* in
//! their input sizes:
//!
//! * **tile quantization** — matmul row counts round up to the kernel's tile
//!   shape, producing the staircase runtime curves described in NVIDIA's
//!   matmul performance guide (cited by the paper in §4.4);
//! * **wave quantization** — thread-block waves round up to the SM count;
//! * **low-occupancy efficiency loss** for small inputs;
//! * **deterministic per-size quirks** — systematic kernel-selection effects
//!   that a random forest can learn but a low-order polynomial cannot
//!   (this is precisely the paper's argument for RF regressors);
//! * **measurement noise** — applied only on the profiling path
//!   ([`KernelOracle::measure`]), emulating run-to-run variance that the
//!   profiler must average away.
//!
//! The collective-communication model ([`network`]) covers all-reduce,
//! all-gather (tensor parallelism) and send/recv (pipeline parallelism) with
//! ring-collective cost formulas over NVLink/PCIe links.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod network;
pub mod oracle;
pub mod quirk;
pub mod sku;

pub use network::CollectiveModel;
pub use oracle::KernelOracle;
pub use sku::GpuSku;
