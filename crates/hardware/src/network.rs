//! Collective-communication cost model (paper §4.3 "Profiling Communication
//! Operators").
//!
//! The three collectives LLM inference uses are modeled with standard ring
//! formulas: an all-reduce of `B` bytes over `n` ranks moves
//! `2·B·(n-1)/n` bytes per rank, an all-gather moves `B·(n-1)/n`, and a
//! pipeline send/recv moves `B` point-to-point. Per-hop latency is added per
//! algorithm step. These operators are model-agnostic — the paper profiles
//! them once per topology, and so do we.

use crate::sku::GpuSku;
use serde::{Deserialize, Serialize};

/// Per-hop latency of a NVLink/NCCL step in seconds.
pub const HOP_LATENCY: f64 = 6.0e-6;

/// Link efficiency: achievable fraction of peak link bandwidth.
pub const LINK_EFFICIENCY: f64 = 0.75;

/// Cost model for collectives on a replica's interconnect topology.
///
/// The paper's testbed has pairwise NVLink within a 4-GPU VM; communicators
/// of size ≤ `nvlink_span` use NVLink bandwidth, larger ones fall back to
/// PCIe-class links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveModel {
    /// Per-direction fast-link bandwidth (bytes/s).
    nvlink_bandwidth: f64,
    /// Fallback link bandwidth (bytes/s).
    pcie_bandwidth: f64,
    /// Largest communicator size fully connected by fast links.
    nvlink_span: u32,
}

impl CollectiveModel {
    /// Builds the collective model for a SKU, assuming the paper's 4-GPU
    /// NVLink islands.
    pub fn for_sku(sku: &GpuSku) -> Self {
        CollectiveModel {
            nvlink_bandwidth: sku.nvlink_bandwidth,
            pcie_bandwidth: sku.pcie_bandwidth,
            nvlink_span: 4,
        }
    }

    /// Builds a model with an explicit fast-link span (for what-if topology
    /// studies).
    pub fn with_span(sku: &GpuSku, nvlink_span: u32) -> Self {
        assert!(nvlink_span >= 1);
        CollectiveModel {
            nvlink_bandwidth: sku.nvlink_bandwidth,
            pcie_bandwidth: sku.pcie_bandwidth,
            nvlink_span,
        }
    }

    fn link_bandwidth(&self, world: u32) -> f64 {
        if world <= self.nvlink_span {
            self.nvlink_bandwidth * LINK_EFFICIENCY
        } else {
            self.pcie_bandwidth * LINK_EFFICIENCY
        }
    }

    /// Ring all-reduce time for `bytes` per rank over `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn all_reduce(&self, bytes: u64, world: u32) -> f64 {
        assert!(world > 0);
        if world == 1 {
            return 0.0;
        }
        let n = world as f64;
        let steps = 2.0 * (n - 1.0);
        let volume = 2.0 * bytes as f64 * (n - 1.0) / n;
        volume / self.link_bandwidth(world) + steps * HOP_LATENCY
    }

    /// Ring all-gather time for `bytes` per rank over `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn all_gather(&self, bytes: u64, world: u32) -> f64 {
        assert!(world > 0);
        if world == 1 {
            return 0.0;
        }
        let n = world as f64;
        let steps = n - 1.0;
        let volume = bytes as f64 * (n - 1.0) / n;
        volume / self.link_bandwidth(world) + steps * HOP_LATENCY
    }

    /// Point-to-point send/recv time for `bytes` between adjacent pipeline
    /// stages.
    pub fn send_recv(&self, bytes: u64) -> f64 {
        bytes as f64 / self.link_bandwidth(2) + HOP_LATENCY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CollectiveModel {
        CollectiveModel::for_sku(&GpuSku::a100_80g())
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = model();
        assert_eq!(m.all_reduce(1 << 20, 1), 0.0);
        assert_eq!(m.all_gather(1 << 20, 1), 0.0);
    }

    #[test]
    fn all_reduce_twice_all_gather_volume() {
        let m = model();
        let bytes = 64 << 20;
        let ar = m.all_reduce(bytes, 4);
        let ag = m.all_gather(bytes, 4);
        // Ignoring latency, AR moves exactly 2x AG volume.
        let ar_bw = ar - 6.0 * HOP_LATENCY;
        let ag_bw = ag - 3.0 * HOP_LATENCY;
        assert!((ar_bw / ag_bw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn send_recv_scales_with_bytes() {
        let m = model();
        let t1 = m.send_recv(1 << 20);
        let t2 = m.send_recv(2 << 20);
        assert!(t2 > t1);
        assert!((t2 - HOP_LATENCY) / (t1 - HOP_LATENCY) > 1.9);
    }

    #[test]
    fn large_world_falls_back_to_slow_links() {
        let m = model();
        let fast = m.all_reduce(1 << 24, 4);
        let slow = m.all_reduce(1 << 24, 8);
        // 8-way spans beyond the NVLink island: much slower despite less
        // volume per rank difference.
        assert!(slow > fast * 2.0, "fast={fast} slow={slow}");
    }

    #[test]
    fn latency_floor_for_tiny_messages() {
        let m = model();
        let t = m.all_reduce(16, 4);
        assert!(t >= 6.0 * HOP_LATENCY);
    }

    proptest! {
        #[test]
        fn all_reduce_monotone_in_bytes(b1 in 1u64..1 << 28, delta in 1u64..1 << 20) {
            let m = model();
            prop_assert!(m.all_reduce(b1 + delta, 4) >= m.all_reduce(b1, 4));
        }

        #[test]
        fn collectives_nonnegative(bytes in 0u64..1 << 30, world in 1u32..16) {
            let m = model();
            prop_assert!(m.all_reduce(bytes, world) >= 0.0);
            prop_assert!(m.all_gather(bytes, world) >= 0.0);
            prop_assert!(m.send_recv(bytes) >= 0.0);
        }
    }
}
