//! Deterministic kernel quirks and measurement noise.
//!
//! Real kernel libraries (cuBLAS, FlashAttention) select different kernels
//! for different problem sizes, producing *systematic*, repeatable runtime
//! deviations of a few percent that are not smooth functions of size. These
//! quirks are exactly why the paper chose random-forest regressors over
//! polynomials (§4.4). We reproduce the effect with a hash-derived
//! multiplicative factor that is deterministic per (operator, size-bucket),
//! plus log-normal run-to-run noise applied only when "measuring".

use vidur_core::rng::SimRng;

/// Relative amplitude of the deterministic per-bucket quirk (± this fraction).
pub const QUIRK_AMPLITUDE: f64 = 0.04;

/// Log-normal sigma of run-to-run measurement noise.
pub const MEASUREMENT_SIGMA: f64 = 0.015;

/// FNV-1a hash of a byte string, used to derive stable quirk factors.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic multiplicative quirk factor in
/// `[1 - QUIRK_AMPLITUDE, 1 + QUIRK_AMPLITUDE]` for an operator at a given
/// input size.
///
/// Sizes are bucketed geometrically (~11 buckets per decade) so nearby sizes
/// share a kernel choice, exactly like real dispatch heuristics: the runtime
/// curve is piecewise-smooth with jumps at bucket boundaries.
pub fn quirk_factor(op_id: &str, size: f64) -> f64 {
    let bucket = if size <= 1.0 {
        0i64
    } else {
        (size.log2() * 4.0).floor() as i64
    };
    let mut key = Vec::with_capacity(op_id.len() + 8);
    key.extend_from_slice(op_id.as_bytes());
    key.extend_from_slice(&bucket.to_le_bytes());
    let h = fnv1a(&key);
    // Map hash to [-1, 1).
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
    1.0 + QUIRK_AMPLITUDE * unit
}

/// One noisy "measurement" of a true runtime: multiplies by log-normal
/// run-to-run noise. Used by the profiler path only.
pub fn noisy_measurement(true_time: f64, rng: &mut SimRng) -> f64 {
    true_time * rng.log_normal(0.0, MEASUREMENT_SIGMA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quirk_is_deterministic() {
        assert_eq!(
            quirk_factor("qkv_proj", 512.0),
            quirk_factor("qkv_proj", 512.0)
        );
    }

    #[test]
    fn quirk_within_amplitude() {
        for size in [1.0, 17.0, 256.0, 4096.0, 1e9] {
            let q = quirk_factor("mlp_up_proj", size);
            assert!(
                (1.0 - QUIRK_AMPLITUDE..=1.0 + QUIRK_AMPLITUDE).contains(&q),
                "{q}"
            );
        }
    }

    #[test]
    fn nearby_sizes_share_bucket() {
        // Buckets span a 2^(1/4) ≈ 19% size range: 900 and 1000 both fall in
        // the [2^9.75, 2^10) bucket.
        assert_eq!(
            quirk_factor("attn_decode", 900.0),
            quirk_factor("attn_decode", 1000.0)
        );
    }

    #[test]
    fn distant_sizes_usually_differ() {
        let diffs = [10.0, 100.0, 1000.0, 10_000.0, 100_000.0]
            .windows(2)
            .filter(|w| quirk_factor("lm_head", w[0]) != quirk_factor("lm_head", w[1]))
            .count();
        assert!(diffs >= 3, "quirks too uniform across decades");
    }

    #[test]
    fn ops_have_independent_quirks() {
        let same = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .filter(|id| quirk_factor(id, 512.0) == quirk_factor("reference", 512.0))
            .count();
        assert!(same <= 1);
    }

    #[test]
    fn noise_centers_on_truth() {
        let mut rng = SimRng::new(7);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| noisy_measurement(1.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.005, "{mean}");
    }

    #[test]
    fn noise_is_positive() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            assert!(noisy_measurement(1e-6, &mut rng) > 0.0);
        }
    }
}
