//! The kernel cost oracle: deterministic ground-truth execution times.
//!
//! Each operator class gets a tailored roofline treatment:
//!
//! * **matmuls** — `max(compute, memory) + launch`, where compute FLOPs are
//!   inflated by tile and wave quantization (the staircase non-linearity)
//!   and memory covers weight + activation traffic. This naturally makes
//!   small-batch decode iterations *weight-bandwidth bound*, matching real
//!   LLM serving behaviour.
//! * **prefill attention** — compute-bound FlashAttention-style kernel,
//!   quadratic in the batch's equivalent prefill length (paper §4.3).
//! * **decode attention** — memory-bound on total KV bytes fetched
//!   (paper §4.3: PagedAttention-v2/FlashDecoding make the split across
//!   requests irrelevant).
//! * **pointwise ops** — pure memory traffic.
//! * **collectives** — delegated to [`CollectiveModel`].
//!
//! Every time is multiplied by a deterministic per-(op, size-bucket) quirk
//! factor ([`crate::quirk`]) so runtime curves have the piecewise jumps that
//! motivated random-forest regressors; [`KernelOracle::measure`] adds
//! log-normal run-to-run noise on top for the profiling path.

use crate::network::CollectiveModel;
use crate::quirk::{noisy_measurement, quirk_factor};
use crate::sku::GpuSku;
use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_model::operators::{OpInput, OpInvocation, Operator};
use vidur_model::runtime::RuntimePredictor;

/// Matmul threadblock tile edge (rows and columns).
const TILE: u64 = 64;
/// Achievable fraction of peak FLOPs for large matmuls.
const MATMUL_EFFICIENCY: f64 = 0.85;
/// Achievable fraction of peak memory bandwidth for streaming kernels.
const STREAM_EFFICIENCY: f64 = 0.82;
/// Achievable fraction of peak FLOPs for fused attention kernels.
const ATTN_EFFICIENCY: f64 = 0.55;
/// Achievable fraction of peak bandwidth for paged KV-cache gathers.
const KV_GATHER_EFFICIENCY: f64 = 0.65;

/// Deterministic analytical GPU kernel cost model.
///
/// # Example
///
/// ```
/// use vidur_hardware::{GpuSku, KernelOracle};
/// use vidur_model::operators::{OpInput, OpInvocation, Operator};
/// use vidur_model::runtime::RuntimePredictor;
///
/// let oracle = KernelOracle::new(GpuSku::a100_80g());
/// let inv = OpInvocation::new(
///     Operator::MlpUpProj,
///     OpInput::Matmul { m: 4096, k: 4096, n: 11008 },
///     1,
/// );
/// let t = oracle.op_time(&inv);
/// assert!(t > 1e-6 && t < 10e-3, "{t}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelOracle {
    sku: GpuSku,
    collectives: CollectiveModel,
}

impl KernelOracle {
    /// Creates an oracle for the given SKU with its default topology.
    pub fn new(sku: GpuSku) -> Self {
        let collectives = CollectiveModel::for_sku(&sku);
        KernelOracle { sku, collectives }
    }

    /// The SKU this oracle models.
    pub fn sku(&self) -> &GpuSku {
        &self.sku
    }

    /// The collective cost model in use.
    pub fn collectives(&self) -> &CollectiveModel {
        &self.collectives
    }

    /// One noisy profiling measurement of an invocation's single-execution
    /// time (paper: CUPTI measurement runs).
    pub fn measure(&self, inv: &OpInvocation, rng: &mut SimRng) -> f64 {
        noisy_measurement(self.op_time(inv), rng)
    }

    fn matmul_time(&self, m: u64, k: u64, n: u64) -> f64 {
        let launch = self.sku.kernel_launch_overhead;
        if m == 0 || k == 0 || n == 0 {
            return launch;
        }
        // Tile quantization: row/col counts round up to the tile grid.
        let m_q = m.div_ceil(TILE) * TILE;
        let n_q = n.div_ceil(TILE) * TILE;
        // Wave quantization: the block grid rounds up to full SM waves.
        let blocks = (m_q / TILE) * (n_q / TILE);
        let waves = blocks.div_ceil(self.sku.sm_count as u64);
        let padded_blocks = waves * self.sku.sm_count as u64;
        let wave_factor = padded_blocks as f64 / blocks as f64;
        let flops = 2.0 * m_q as f64 * k as f64 * n_q as f64 * wave_factor;
        let compute = flops / (self.sku.peak_fp16_flops * MATMUL_EFFICIENCY);
        // Weights (k*n), activations in (m*k) and out (m*n).
        let bytes = 2.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
        let memory = bytes / (self.sku.mem_bandwidth * STREAM_EFFICIENCY);
        compute.max(memory) + launch
    }

    fn pointwise_time(&self, tokens: u64, width: u64) -> f64 {
        // Two reads (input + params/residual) and one write per element.
        let bytes = 3.0 * tokens as f64 * width as f64 * 2.0;
        bytes / (self.sku.mem_bandwidth * STREAM_EFFICIENCY) + 0.5 * self.sku.kernel_launch_overhead
    }

    fn attn_prefill_time(&self, equiv_len: u64, q_heads: u64, head_dim: u64) -> f64 {
        // equiv_len^2 counts p(p+2h) score-entries*2; 4 FLOPs per entry-dim
        // for QK^T plus PV, halved by causality already folded into equiv.
        let flops = 2.0 * equiv_len as f64 * equiv_len as f64 * head_dim as f64 * q_heads as f64;
        flops / (self.sku.peak_fp16_flops * ATTN_EFFICIENCY) + self.sku.kernel_launch_overhead
    }

    fn attn_decode_time(&self, kv_bytes: u64, tokens: u64) -> f64 {
        let gather = kv_bytes as f64 / (self.sku.mem_bandwidth * KV_GATHER_EFFICIENCY);
        // Small per-sequence reduction cost.
        let epilogue = tokens as f64 * 2.0e-8;
        gather + epilogue + self.sku.kernel_launch_overhead
    }

    fn comm_time(&self, op: Operator, bytes: u64, world: u32) -> f64 {
        match op {
            Operator::AllReduce => self.collectives.all_reduce(bytes, world),
            Operator::AllGather => self.collectives.all_gather(bytes, world),
            Operator::SendRecv => self.collectives.send_recv(bytes),
            _ => unreachable!("comm_time called for non-communication op {op}"),
        }
    }
}

impl RuntimePredictor for KernelOracle {
    fn op_time(&self, inv: &OpInvocation) -> f64 {
        let base = match inv.input {
            OpInput::Matmul { m, k, n } => self.matmul_time(m, k, n),
            OpInput::Pointwise { tokens, width } => self.pointwise_time(tokens, width),
            OpInput::AttentionPrefill {
                equiv_len,
                q_heads,
                head_dim,
            } => self.attn_prefill_time(equiv_len, q_heads, head_dim),
            OpInput::AttentionDecode { kv_bytes, tokens } => {
                self.attn_decode_time(kv_bytes, tokens)
            }
            OpInput::Comm { bytes, world } => self.comm_time(inv.op, bytes, world),
        };
        base * quirk_factor(inv.op.id(), inv.input.feature())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vidur_model::batch::{BatchComposition, RequestSlice};
    use vidur_model::parallelism::ParallelismConfig;
    use vidur_model::spec::ModelSpec;
    use vidur_model::ExecutionPlan;

    fn oracle() -> KernelOracle {
        KernelOracle::new(GpuSku::a100_80g())
    }

    fn mm(m: u64, k: u64, n: u64) -> OpInvocation {
        OpInvocation::new(Operator::MlpUpProj, OpInput::Matmul { m, k, n }, 1)
    }

    #[test]
    fn large_matmul_near_peak() {
        let o = oracle();
        let (m, k, n) = (8192, 8192, 8192);
        let t = o.op_time(&mm(m, k, n));
        let ideal = 2.0 * (m * k * n) as f64 / o.sku().peak_fp16_flops;
        let eff = ideal / t;
        assert!(eff > 0.6 && eff <= 1.0, "eff {eff}");
    }

    #[test]
    fn small_matmul_is_memory_bound() {
        let o = oracle();
        // Decode-style: tiny m, big weights.
        let t = o.op_time(&mm(8, 8192, 28672));
        let weight_bytes = 2.0 * (8192.0 * 28672.0);
        let min_mem_time = weight_bytes / o.sku().mem_bandwidth;
        assert!(t > min_mem_time, "t={t} min={min_mem_time}");
        // And far from what pure compute would suggest.
        let ideal_compute = 2.0 * 8.0 * 8192.0 * 28672.0 / o.sku().peak_fp16_flops;
        assert!(t > 10.0 * ideal_compute);
    }

    #[test]
    fn tile_quantization_staircase() {
        let o = oracle();
        // Crossing a 64-row tile boundary jumps; within a tile it's flat
        // (same quirk bucket picked to avoid confound).
        let t64 = o.op_time(&mm(64, 4096, 4096));
        let t65 = o.op_time(&mm(65, 4096, 4096));
        assert!(t65 >= t64, "t64={t64} t65={t65}");
    }

    #[test]
    fn prefill_attention_quadratic() {
        let o = oracle();
        let t1 = o.op_time(&OpInvocation::new(
            Operator::AttnPrefill,
            OpInput::AttentionPrefill {
                equiv_len: 1024,
                q_heads: 32,
                head_dim: 128,
            },
            1,
        ));
        let t2 = o.op_time(&OpInvocation::new(
            Operator::AttnPrefill,
            OpInput::AttentionPrefill {
                equiv_len: 2048,
                q_heads: 32,
                head_dim: 128,
            },
            1,
        ));
        let ratio = t2 / t1;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn decode_attention_linear_in_kv_bytes() {
        let o = oracle();
        let t = |kv: u64| {
            o.op_time(&OpInvocation::new(
                Operator::AttnDecode,
                OpInput::AttentionDecode {
                    kv_bytes: kv,
                    tokens: 16,
                },
                1,
            ))
        };
        let t1 = t(100 << 20);
        let t2 = t(200 << 20);
        let ratio = t2 / t1;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn h100_faster_than_a100() {
        let a = oracle();
        let h = KernelOracle::new(GpuSku::h100_80g());
        let inv = mm(4096, 8192, 8192);
        assert!(h.op_time(&inv) < a.op_time(&inv));
    }

    #[test]
    fn measurement_noise_close_to_truth() {
        let o = oracle();
        let mut rng = SimRng::new(3);
        let inv = mm(512, 4096, 4096);
        let truth = o.op_time(&inv);
        let n = 200;
        let mean: f64 = (0..n).map(|_| o.measure(&inv, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean / truth - 1.0).abs() < 0.01,
            "mean/truth {}",
            mean / truth
        );
    }

    #[test]
    fn full_decode_iteration_time_plausible() {
        // One decode iteration of LLaMA2-7B at batch 32 on A100 should land
        // in the 5–40 ms range (weight-bandwidth bound ~7ms + overheads).
        let o = oracle();
        let model = ModelSpec::llama2_7b();
        let slices: Vec<RequestSlice> = (0..32).map(|i| RequestSlice::decode(i, 500)).collect();
        let plan = ExecutionPlan::build(
            &model,
            &ParallelismConfig::serial(),
            &BatchComposition::new(slices),
        );
        let t = o.stage_time(&plan, 0);
        assert!(t > 3e-3 && t < 40e-3, "iteration time {t}");
    }

    #[test]
    fn full_prefill_iteration_time_plausible() {
        // A 2048-token prefill of LLaMA2-7B on A100: compute-bound around
        // 2*6.7e9*2048 / (312e12*0.85) ≈ 100ms ... actually ~0.1s upper;
        // accept a broad plausibility window.
        let o = oracle();
        let model = ModelSpec::llama2_7b();
        let plan = ExecutionPlan::build(
            &model,
            &ParallelismConfig::serial(),
            &BatchComposition::new(vec![RequestSlice::prefill(0, 2048, 0)]),
        );
        let t = o.stage_time(&plan, 0);
        assert!(t > 20e-3 && t < 300e-3, "prefill time {t}");
    }

    #[test]
    fn tp_shrinks_per_device_time_but_adds_comm() {
        let o = oracle();
        let model = ModelSpec::llama2_70b();
        let batch = BatchComposition::new(vec![RequestSlice::prefill(0, 1024, 0)]);
        let serial_model_time: f64 = {
            // Hypothetical single-device run (doesn't fit in memory, but the
            // oracle doesn't care): no comm ops.
            let plan = ExecutionPlan::build(&model, &ParallelismConfig::serial(), &batch);
            o.stage_time(&plan, 0)
        };
        let tp4 = {
            let plan = ExecutionPlan::build(&model, &ParallelismConfig::new(4, 1), &batch);
            o.stage_time(&plan, 0)
        };
        assert!(
            tp4 < serial_model_time,
            "tp4={tp4} serial={serial_model_time}"
        );
        assert!(
            tp4 > serial_model_time / 4.0,
            "comm overhead must make TP sublinear: tp4={tp4} serial={serial_model_time}"
        );
    }

    proptest! {
        #[test]
        fn op_times_positive_and_finite(
            m in 1u64..8192, k in 1u64..8192, n in 1u64..32768
        ) {
            let t = oracle().op_time(&mm(m, k, n));
            prop_assert!(t.is_finite() && t > 0.0);
        }

        #[test]
        fn matmul_monotone_in_big_steps(m in 1u64..4096) {
            // Doubling m never makes a matmul faster (beyond quirk wiggle).
            let o = oracle();
            let t1 = o.op_time(&mm(m, 4096, 4096));
            let t2 = o.op_time(&mm(m * 2, 4096, 4096));
            prop_assert!(t2 > t1 * 0.9, "m={m} t1={t1} t2={t2}");
        }
    }
}
