//! Configuration-transfer (misconfiguration) analysis — paper Figure 1b.
//!
//! Given the per-workload optimal configurations, evaluate each optimal
//! config on every *other* workload and report the cost ratio
//! `best(workload) / transferred(workload)` — how much more a deployment
//! pays by reusing a config tuned for a different trace. The paper finds up
//! to 2× for LLaMA2-70B.

use crate::capacity::CapacityParams;
use crate::cost::CostLedger;
use crate::runner::evaluate_config;
use serde::{Deserialize, Serialize};
use vidur_estimator::EstimatorKind;
use vidur_simulator::ClusterConfig;
use vidur_workload::Trace;

/// The misconfiguration cost-ratio matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisconfigMatrix {
    /// Workload names, indexing both axes.
    pub workloads: Vec<String>,
    /// `ratios[reference][transfer]`: cost factor of serving `transfer`'s
    /// workload with `reference`'s optimal config (1.0 on the diagonal).
    pub ratios: Vec<Vec<f64>>,
    /// Search-cost ledger for the matrix evaluation.
    pub ledger: CostLedger,
}

/// Computes the matrix. `optima[i]` must be the optimal configuration for
/// `traces[i]`.
///
/// # Panics
///
/// Panics if `optima` and `traces` have different lengths or are empty.
pub fn misconfiguration_matrix(
    optima: &[ClusterConfig],
    traces: &[Trace],
    params: &CapacityParams,
    kind: EstimatorKind,
) -> MisconfigMatrix {
    assert_eq!(optima.len(), traces.len(), "one optimum per trace");
    assert!(!optima.is_empty());
    let n = optima.len();
    let mut ledger = CostLedger::new();
    // qpd[i][j]: QPS/$ of config i on trace j.
    let mut qpd = vec![vec![0.0f64; n]; n];
    for (i, cfg) in optima.iter().enumerate() {
        for (j, trace) in traces.iter().enumerate() {
            let (eval, l) = evaluate_config(cfg, trace, params, kind);
            ledger.merge(&l);
            qpd[i][j] = eval.map(|e| e.qps_per_dollar).unwrap_or(0.0);
        }
    }
    let mut ratios = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in ratios.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            // Serving workload j with config i costs qpd[j][j] / qpd[i][j]
            // times the optimum.
            if qpd[i][j] > 0.0 {
                *cell = qpd[j][j] / qpd[i][j];
            }
        }
    }
    MisconfigMatrix {
        workloads: traces.iter().map(|t| t.workload_name.clone()).collect(),
        ratios,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::rng::SimRng;
    use vidur_hardware::GpuSku;
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    #[test]
    fn diagonal_is_one() {
        let mut rng = SimRng::new(2);
        let traces: Vec<Trace> = [TraceWorkload::chat_1m(), TraceWorkload::arxiv_4k()]
            .iter()
            .map(|w| w.generate(25, &ArrivalProcess::Static, &mut rng))
            .collect();
        let cfg = |bs| {
            ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::a100_80g(),
                ParallelismConfig::serial(),
                1,
                SchedulerConfig::new(BatchPolicyKind::Vllm, bs),
            )
        };
        let optima = vec![cfg(128), cfg(32)];
        let params = CapacityParams {
            bisect_iters: 3,
            ..CapacityParams::default()
        };
        let m = misconfiguration_matrix(&optima, &traces, &params, EstimatorKind::default());
        assert_eq!(m.workloads, vec!["chat-1m", "arxiv-4k"]);
        for i in 0..2 {
            let d = m.ratios[i][i];
            assert!((d - 1.0).abs() < 1e-9, "diagonal {d}");
        }
        // Off-diagonals are valid positive ratios.
        assert!(m.ratios[0][1].is_finite() && m.ratios[0][1] > 0.0);
    }
}
