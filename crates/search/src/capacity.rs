//! Capacity binary search (paper §6 "Optimization objective"):
//! the maximum QPS a configuration sustains with P99 scheduling delay under
//! 5 seconds.
//!
//! The search first bounds capacity from above with one *static* (offline)
//! run — no configuration can sustain more than its offline throughput —
//! then bisects Poisson load between zero and that bound, probing each rate
//! with a time-capped simulation.

use crate::cost::CostLedger;
use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::config::LateAbort;
use vidur_simulator::{ClusterConfig, ClusterSimulator, SimulationReport, StageTimer};
use vidur_workload::{ArrivalProcess, Trace};

/// Parameters of a capacity search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityParams {
    /// P99 scheduling-delay limit in seconds (paper: 5 s).
    pub sched_delay_p99_limit: f64,
    /// Bisection iterations after bracketing.
    pub bisect_iters: u32,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for CapacityParams {
    fn default() -> Self {
        CapacityParams {
            sched_delay_p99_limit: 5.0,
            bisect_iters: 7,
            seed: 0xCAFE,
        }
    }
}

/// Outcome of a capacity search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityResult {
    /// Maximum sustainable QPS (per the scheduling-delay constraint).
    pub capacity_qps: f64,
    /// Report of the last *feasible* probe (metrics at capacity).
    pub report_at_capacity: SimulationReport,
    /// Report of the offline (static) bounding run.
    pub offline_report: SimulationReport,
    /// Simulation probes executed.
    pub probes: u32,
}

fn probe(
    config: &ClusterConfig,
    base: &Trace,
    qps: f64,
    params: &CapacityParams,
    timer: &StageTimer,
    ledger: &mut CostLedger,
) -> (bool, SimulationReport) {
    let mut rng = SimRng::new(params.seed ^ qps.to_bits());
    let trace = base.with_arrivals(&ArrivalProcess::Poisson { qps }, &mut rng);
    let mut cfg = config.clone();
    // Cap simulated time: arrivals span + generous drain window. An
    // overloaded system blows through this and is marked infeasible.
    let span = trace.len() as f64 / qps;
    cfg.max_sim_time = Some(SimTime::from_secs_f64(span * 3.0 + 120.0));
    // p99 < limit tolerates 1% of requests over; abort once that tolerance
    // is provably blown, long before the queue explosion finishes playing
    // out.
    cfg.late_abort = Some(LateAbort {
        delay_limit_secs: params.sched_delay_p99_limit,
        max_late: trace.len() / 100,
    });
    let report = ClusterSimulator::with_timer(cfg, trace, timer.clone(), params.seed).run();
    ledger.record_run(&report, config);
    let feasible = report.completed == report.num_requests
        && report.scheduling_delay.p99 < params.sched_delay_p99_limit;
    (feasible, report)
}

/// Finds the capacity of `config` on the request-length distribution of
/// `base` (arrival times in `base` are ignored and replaced per probe).
///
/// Builds a [`StageTimer`] for the configuration internally; use
/// [`find_capacity_with_timer`] to control the timer (and read its cache
/// statistics) from the caller, as [`crate::runner::evaluate_config`] does.
///
/// Returns `None` if even the lightest probed load is infeasible.
pub fn find_capacity(
    config: &ClusterConfig,
    base: &Trace,
    params: &CapacityParams,
    source: &RuntimeSource,
    ledger: &mut CostLedger,
) -> Option<CapacityResult> {
    let timer = StageTimer::for_config(config, source.clone());
    find_capacity_with_timer(config, base, params, &timer, ledger)
}

/// [`find_capacity`] with a caller-supplied [`StageTimer`]: the offline
/// bounding run and every bisection probe clone the timer, so they all share
/// one batch-shape cache — decode-heavy shapes priced by the offline run are
/// replayed for free across the ~`bisect_iters` probes.
pub fn find_capacity_with_timer(
    config: &ClusterConfig,
    base: &Trace,
    params: &CapacityParams,
    timer: &StageTimer,
    ledger: &mut CostLedger,
) -> Option<CapacityResult> {
    assert!(!base.is_empty(), "capacity search needs a non-empty trace");
    // Offline bound: run everything at t=0 and measure drain throughput.
    let offline_trace = {
        let mut rng = SimRng::new(params.seed);
        base.with_arrivals(&ArrivalProcess::Static, &mut rng)
    };
    let offline_report =
        ClusterSimulator::with_timer(config.clone(), offline_trace, timer.clone(), params.seed)
            .run();
    ledger.record_run(&offline_report, config);
    let mut probes = 1u32;
    if offline_report.completed < offline_report.num_requests {
        return None;
    }
    // The offline drain rate underestimates steady-state capacity on short
    // traces (ramp-up and tail-drain edge effects), so bracket a bit above.
    let hi_bound = offline_report.throughput_qps * 1.25;
    let (mut lo, mut hi) = (0.0f64, hi_bound);
    let mut best: Option<(f64, SimulationReport)> = None;
    // The offline throughput is an upper bound but often nearly achievable;
    // probe it first so well-behaved configs converge fast.
    for _ in 0..params.bisect_iters {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        let (feasible, report) = probe(config, base, mid, params, timer, ledger);
        probes += 1;
        if feasible {
            lo = mid;
            best = Some((mid, report));
        } else {
            hi = mid;
        }
    }
    let (capacity_qps, report_at_capacity) = best?;
    Some(CapacityResult {
        capacity_qps,
        report_at_capacity,
        offline_report,
        probes,
    })
}

/// Rough analytic sanity bound used in tests: a single replica cannot
/// exceed `peak_flops / flops_per_token` tokens per second.
pub fn flops_upper_bound_qps(config: &ClusterConfig, mean_tokens_per_request: f64) -> f64 {
    let flops_per_token = vidur_model::flops::dense_flops_per_token(&config.model);
    let cluster_flops = config.sku.peak_fp16_flops * config.total_gpus() as f64;
    cluster_flops / (flops_per_token * mean_tokens_per_request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::rng::SimRng;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::TraceWorkload;

    fn config() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
        )
    }

    fn base_trace(n: usize) -> Trace {
        let mut rng = SimRng::new(5);
        TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Static, &mut rng)
    }

    fn oracle() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    #[test]
    fn finds_positive_capacity() {
        let mut ledger = CostLedger::new();
        let params = CapacityParams {
            bisect_iters: 5,
            ..CapacityParams::default()
        };
        let result = find_capacity(&config(), &base_trace(60), &params, &oracle(), &mut ledger)
            .expect("7B on A100 must have capacity");
        assert!(result.capacity_qps > 0.05, "{}", result.capacity_qps);
        // Capacity stays within the bracket above the offline drain rate.
        assert!(result.capacity_qps <= result.offline_report.throughput_qps * 1.25);
        // Constraint held at the capacity point.
        assert!(result.report_at_capacity.scheduling_delay.p99 < 5.0);
        assert!(ledger.runs() >= result.probes as u64);
    }

    #[test]
    fn capacity_scales_with_replicas() {
        let mut ledger = CostLedger::new();
        let params = CapacityParams {
            bisect_iters: 5,
            ..CapacityParams::default()
        };
        let single =
            find_capacity(&config(), &base_trace(150), &params, &oracle(), &mut ledger).unwrap();
        let mut c2 = config();
        c2.num_replicas = 2;
        let double = find_capacity(&c2, &base_trace(150), &params, &oracle(), &mut ledger).unwrap();
        // With a 150-request probe the P99-delay constraint is still noisy
        // (one Poisson burst moves the frontier), so require a clear win
        // rather than exactly 2x.
        assert!(
            double.capacity_qps > 1.4 * single.capacity_qps,
            "2 replicas: {} vs {}",
            double.capacity_qps,
            single.capacity_qps
        );
    }

    #[test]
    fn flops_bound_holds() {
        let mut ledger = CostLedger::new();
        let params = CapacityParams {
            bisect_iters: 4,
            ..CapacityParams::default()
        };
        let trace = base_trace(50);
        let mean_tokens = trace
            .requests
            .iter()
            .map(|r| (r.prefill_tokens + r.decode_tokens) as f64)
            .sum::<f64>()
            / trace.len() as f64;
        let result = find_capacity(&config(), &trace, &params, &oracle(), &mut ledger).unwrap();
        let bound = flops_upper_bound_qps(&config(), mean_tokens);
        assert!(
            result.capacity_qps < bound,
            "{} < {bound}",
            result.capacity_qps
        );
    }
}
