//! # vidur-search
//!
//! Vidur-Search (paper §6): automatic exploration of the deployment
//! configuration space to maximize **QPS per dollar** under latency SLOs.
//!
//! The search (1) enumerates valid deployment configurations (SKU × TP × PP
//! × scheduler × batch size, replicas filling the GPU budget), (2) finds
//! each configuration's *capacity* — the highest sustainable request rate
//! whose P99 scheduling delay stays under 5 s — by binary search over
//! simulated Poisson loads, (3) evaluates latency metrics at capacity, and
//! (4) reports the SLO-compliant Pareto frontier and the cost of the search
//! itself (the paper's Table 2 savings accounting).
//!
//! Runs are parallelized across CPU cores with rayon, exactly as the paper
//! parallelizes its per-configuration capacity searches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capacity;
pub mod cost;
pub mod misconfig;
pub mod offline;
pub mod pareto;
pub mod runner;
pub mod space;

pub use capacity::{find_capacity, find_capacity_with_timer, CapacityParams, CapacityResult};
pub use cost::CostLedger;
pub use misconfig::misconfiguration_matrix;
pub use offline::{best_by_cost, run_offline_search, OfflineEvaluation};
pub use pareto::{pareto_frontier, SloConstraints};
pub use runner::{run_search, ConfigEvaluation, SearchOutcome};
pub use space::SearchSpace;
