//! The parallel search runner (paper §6: "we parallelize these runs by
//! running each search on a separate core").
//!
//! For each enumerated configuration the runner onboards the estimator for
//! its (model, TP, SKU) triple, binary-searches capacity, and records
//! QPS-per-dollar plus the latency metrics at the capacity point. Results
//! feed the Pareto/SLO analysis, the optimal-configuration tables (Figures
//! 1a and 6) and the cost ledger (Table 2).

use crate::capacity::{find_capacity_with_timer, CapacityParams};
use crate::cost::CostLedger;
use crate::pareto::SloConstraints;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use vidur_estimator::EstimatorKind;
use vidur_simulator::{onboard_timer, ClusterConfig};
use vidur_workload::Trace;

/// One configuration's search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigEvaluation {
    /// The full configuration (None only in synthetic test fixtures).
    pub config: Option<ClusterConfig>,
    /// Human-readable configuration label.
    pub label: String,
    /// Capacity (max sustainable QPS, P99 scheduling delay < limit).
    pub capacity_qps: f64,
    /// Capacity divided by cluster $/hour — the paper's objective.
    pub qps_per_dollar: f64,
    /// P90 TTFT at the capacity point, seconds.
    pub ttft_p90: f64,
    /// P99 TBT at the capacity point, seconds.
    pub tbt_p99: f64,
    /// P99 scheduling delay at the capacity point, seconds.
    pub sched_delay_p99: f64,
    /// MFU at the capacity point.
    pub mfu: f64,
    /// Mean KV occupancy at the capacity point.
    pub kv_utilization: f64,
    /// Cluster rental cost.
    pub dollars_per_hour: f64,
}

/// Complete outcome of a (model, workload) search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Workload searched.
    pub workload: String,
    /// Per-configuration evaluations (infeasible configs omitted).
    pub evaluations: Vec<ConfigEvaluation>,
    /// Aggregated search-cost ledger.
    pub ledger: CostLedger,
}

impl SearchOutcome {
    /// The best (highest QPS/$) evaluation subject to SLOs, if any.
    ///
    /// NaN objectives (which a healthy search never produces) are excluded
    /// from candidacy, and the comparison uses [`f64::total_cmp`] — no
    /// panic, and no electing a broken configuration as the optimum.
    pub fn best(&self, slo: &SloConstraints) -> Option<&ConfigEvaluation> {
        self.evaluations
            .iter()
            .filter(|e| !e.qps_per_dollar.is_nan() && slo.satisfied_by(e))
            .max_by(|a, b| a.qps_per_dollar.total_cmp(&b.qps_per_dollar))
    }

    /// The best evaluation ignoring SLOs (NaN-excluding, like
    /// [`SearchOutcome::best`]).
    pub fn best_unconstrained(&self) -> Option<&ConfigEvaluation> {
        self.evaluations
            .iter()
            .filter(|e| !e.qps_per_dollar.is_nan())
            .max_by(|a, b| a.qps_per_dollar.total_cmp(&b.qps_per_dollar))
    }
}

/// Evaluates one configuration (estimator-driven, as Vidur-Search does).
///
/// Under **round-robin** routing capacity is probed on a single replica and
/// scaled by the replica count: round-robin over i.i.d. requests makes the
/// replicas independent queues, so cluster capacity is `replicas x` the
/// per-replica capacity — and the probe trace then exercises one replica
/// fully instead of being split 16 ways. Any other routing policy couples
/// the replicas (load-aware placement, deferred queues, fair-share credits),
/// so the probe simulates the full replica set and reports its measured
/// capacity directly. Latency metrics come from the probe run at its
/// capacity point either way.
pub fn evaluate_config(
    config: &ClusterConfig,
    base_trace: &Trace,
    params: &CapacityParams,
    kind: EstimatorKind,
) -> (Option<ConfigEvaluation>, CostLedger) {
    let mut ledger = CostLedger::new();
    let started = Instant::now();
    // The onboarding-cached stage timer: one shape map shared by the
    // offline bounding run, every bisection probe, and every other
    // configuration at this parallelism point — but with hit/miss counters
    // private to this handle, so the ledger's counts are exact even when
    // rayon workers share the map concurrently.
    let timer = onboard_timer(config, kind);
    let mut probe_config = config.clone();
    let scale = if matches!(
        config.global_policy,
        vidur_scheduler::GlobalPolicyKind::RoundRobin
    ) {
        probe_config.num_replicas = 1;
        config.num_replicas as f64
    } else {
        1.0
    };
    let result = find_capacity_with_timer(&probe_config, base_trace, params, &timer, &mut ledger);
    ledger.add_wall_clock(started.elapsed().as_secs_f64());
    ledger.record_cache(timer.stats());
    let eval = result.map(|r| ConfigEvaluation {
        label: config.label(),
        capacity_qps: r.capacity_qps * scale,
        qps_per_dollar: r.capacity_qps * scale / config.dollars_per_hour(),
        ttft_p90: r.report_at_capacity.ttft.p90,
        tbt_p99: r.report_at_capacity.tbt.p99,
        sched_delay_p99: r.report_at_capacity.scheduling_delay.p99,
        mfu: r.report_at_capacity.mfu,
        kv_utilization: r.report_at_capacity.kv_utilization,
        dollars_per_hour: config.dollars_per_hour(),
        config: Some(config.clone()),
    });
    (eval, ledger)
}

/// Runs the full search over `configs` in parallel across CPU cores.
pub fn run_search(
    configs: &[ClusterConfig],
    base_trace: &Trace,
    params: &CapacityParams,
    kind: EstimatorKind,
) -> SearchOutcome {
    let results: Vec<(Option<ConfigEvaluation>, CostLedger)> = configs
        .par_iter()
        .map(|c| evaluate_config(c, base_trace, params, kind))
        .collect();
    let mut ledger = CostLedger::new();
    let mut evaluations = Vec::new();
    for (eval, l) in results {
        ledger.merge(&l);
        if let Some(e) = eval {
            evaluations.push(e);
        }
    }
    SearchOutcome {
        workload: base_trace.workload_name.clone(),
        evaluations,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::rng::SimRng;
    use vidur_hardware::GpuSku;
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    fn tiny_trace() -> Trace {
        let mut rng = SimRng::new(1);
        TraceWorkload::chat_1m().generate(30, &ArrivalProcess::Static, &mut rng)
    }

    fn configs() -> Vec<ClusterConfig> {
        vec![
            ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::a100_80g(),
                ParallelismConfig::serial(),
                1,
                SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
            ),
            ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::h100_80g(),
                ParallelismConfig::serial(),
                1,
                SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
            ),
        ]
    }

    #[test]
    fn search_evaluates_all_feasible_configs() {
        let params = CapacityParams {
            bisect_iters: 3,
            ..CapacityParams::default()
        };
        let outcome = run_search(&configs(), &tiny_trace(), &params, EstimatorKind::default());
        assert_eq!(outcome.evaluations.len(), 2);
        assert!(outcome.ledger.runs() >= 4);
        for e in &outcome.evaluations {
            assert!(e.capacity_qps > 0.0, "{}", e.label);
            assert!(e.qps_per_dollar > 0.0);
            assert!(e.config.is_some());
        }
        // The shape cache was consulted across every probe, and sharing one
        // timer per parallelism point must yield actual reuse. (Misses may
        // be zero here: the process-wide timer cache can arrive pre-warmed
        // by other tests.)
        assert!(
            outcome.ledger.cache_hits() > 0,
            "bisection probes must reuse cached shapes"
        );
    }

    /// Regression: a NaN objective must neither panic `best` nor be
    /// elected the optimum — it is excluded from candidacy.
    #[test]
    fn best_tolerates_nan_objective() {
        let eval = |label: &str, qpd: f64| ConfigEvaluation {
            config: None,
            label: label.to_string(),
            capacity_qps: 1.0,
            qps_per_dollar: qpd,
            ttft_p90: 0.1,
            tbt_p99: 0.01,
            sched_delay_p99: 0.1,
            mfu: 0.5,
            kv_utilization: 0.5,
            dollars_per_hour: 1.0,
        };
        let outcome = SearchOutcome {
            workload: "synthetic".to_string(),
            evaluations: vec![eval("ok", 2.0), eval("nan", f64::NAN), eval("best", 3.0)],
            ledger: CostLedger::new(),
        };
        // No panic, and the NaN entry never wins.
        assert_eq!(outcome.best_unconstrained().unwrap().label, "best");
        let loose = SloConstraints {
            ttft_p90_max: 1e9,
            tbt_p99_max: 1e9,
        };
        assert_eq!(outcome.best(&loose).unwrap().label, "best");
    }

    #[test]
    fn best_respects_slo() {
        let params = CapacityParams {
            bisect_iters: 3,
            ..CapacityParams::default()
        };
        let outcome = run_search(&configs(), &tiny_trace(), &params, EstimatorKind::default());
        // Impossible SLO: no winner.
        let strict = SloConstraints {
            ttft_p90_max: 1e-9,
            tbt_p99_max: 1e-9,
        };
        assert!(outcome.best(&strict).is_none());
        // Loose SLO: some winner, and it is the unconstrained max.
        let loose = SloConstraints {
            ttft_p90_max: 1e9,
            tbt_p99_max: 1e9,
        };
        assert_eq!(
            outcome.best(&loose).map(|e| &e.label),
            outcome.best_unconstrained().map(|e| &e.label)
        );
    }
}
