//! Offline (batch-inference) search: the makespan objective (paper §6,
//! closing note).
//!
//! For batch jobs — nightly summarization runs, dataset translation — there
//! is no arrival process: all requests are ready at t=0 and the operator
//! wants either the shortest wall-clock (makespan) or the cheapest total
//! run (makespan × cluster $/hour).

use crate::cost::CostLedger;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator};
use vidur_workload::{ArrivalProcess, Trace};

/// One configuration's offline-run evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineEvaluation {
    /// The evaluated configuration.
    pub config: ClusterConfig,
    /// Human-readable label.
    pub label: String,
    /// Time to drain the whole batch, seconds.
    pub makespan_secs: f64,
    /// Total run cost: makespan × cluster rental rate.
    pub cost_dollars: f64,
    /// Model FLOPs utilization during the run.
    pub mfu: f64,
    /// Energy consumed, kWh.
    pub energy_kwh: f64,
}

/// Evaluates every configuration on the batch job (static arrivals) and
/// returns evaluations sorted by makespan, plus the cost ledger.
pub fn run_offline_search(
    configs: &[ClusterConfig],
    job: &Trace,
    kind: EstimatorKind,
    seed: u64,
) -> (Vec<OfflineEvaluation>, CostLedger) {
    let results: Vec<(Option<OfflineEvaluation>, CostLedger)> = configs
        .par_iter()
        .map(|config| {
            let mut ledger = CostLedger::new();
            if config.memory_plan().is_err() {
                return (None, ledger);
            }
            let est = onboard(&config.model, &config.parallelism, &config.sku, kind);
            let mut rng = SimRng::new(seed);
            let trace = job.with_arrivals(&ArrivalProcess::Static, &mut rng);
            let report = ClusterSimulator::new(
                config.clone(),
                trace,
                RuntimeSource::Estimator((*est).clone()),
                seed,
            )
            .run();
            ledger.record_run(&report, config);
            if report.completed < report.num_requests {
                return (None, ledger);
            }
            let eval = OfflineEvaluation {
                label: config.label(),
                makespan_secs: report.makespan_secs,
                cost_dollars: report.makespan_secs / 3600.0 * config.dollars_per_hour(),
                mfu: report.mfu,
                energy_kwh: report.energy_kwh,
                config: config.clone(),
            };
            (Some(eval), ledger)
        })
        .collect();
    let mut ledger = CostLedger::new();
    let mut evals = Vec::new();
    for (eval, l) in results {
        ledger.merge(&l);
        if let Some(e) = eval {
            evals.push(e);
        }
    }
    evals.sort_by(|a, b| {
        a.makespan_secs
            .partial_cmp(&b.makespan_secs)
            .expect("no NaN makespan")
    });
    (evals, ledger)
}

/// The cheapest-total-cost evaluation, if any.
pub fn best_by_cost(evals: &[OfflineEvaluation]) -> Option<&OfflineEvaluation> {
    evals.iter().min_by(|a, b| {
        a.cost_dollars
            .partial_cmp(&b.cost_dollars)
            .expect("no NaN cost")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_hardware::GpuSku;
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::TraceWorkload;

    fn job(n: usize) -> Trace {
        let mut rng = SimRng::new(31);
        TraceWorkload::arxiv_4k().generate(n, &ArrivalProcess::Static, &mut rng)
    }

    fn configs() -> Vec<ClusterConfig> {
        vec![
            ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::a100_80g(),
                ParallelismConfig::serial(),
                1,
                SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
            ),
            ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::a100_80g(),
                ParallelismConfig::serial(),
                2,
                SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
            ),
            ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::h100_80g(),
                ParallelismConfig::serial(),
                1,
                SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 1024 }, 64),
            ),
        ]
    }

    #[test]
    fn offline_search_ranks_by_makespan() {
        let (evals, ledger) = run_offline_search(&configs(), &job(30), EstimatorKind::default(), 1);
        assert_eq!(evals.len(), 3);
        assert!(evals
            .windows(2)
            .all(|w| w[0].makespan_secs <= w[1].makespan_secs));
        assert_eq!(ledger.runs(), 3);
        // Two replicas must drain faster than one on the same SKU/scheduler.
        let one = evals
            .iter()
            .find(|e| e.label.contains("/r1") && e.label.contains("a100"))
            .unwrap();
        let two = evals.iter().find(|e| e.label.contains("/r2")).unwrap();
        assert!(two.makespan_secs < one.makespan_secs);
    }

    #[test]
    fn cheapest_is_not_necessarily_fastest() {
        let (evals, _) = run_offline_search(&configs(), &job(30), EstimatorKind::default(), 2);
        let cheapest = best_by_cost(&evals).unwrap();
        let fastest = &evals[0];
        // Both selections exist; cost ranking may differ from speed ranking
        // (2 replicas halve time but double $/hr).
        assert!(cheapest.cost_dollars <= fastest.cost_dollars + 1e-9);
    }

    #[test]
    fn infeasible_configs_skipped() {
        let big = ClusterConfig::new(
            ModelSpec::llama2_70b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(), // cannot fit
            1,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
        );
        let (evals, _) = run_offline_search(&[big], &job(5), EstimatorKind::default(), 3);
        assert!(evals.is_empty());
    }
}
