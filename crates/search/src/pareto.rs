//! SLO constraints and Pareto-frontier analysis (paper §7.3, Figure 5).

use crate::runner::ConfigEvaluation;
use serde::{Deserialize, Serialize};

/// Latency service-level objectives (paper §7.3: TTFT P90 < 2 s,
/// TBT P99 < 200 ms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConstraints {
    /// Maximum P90 time-to-first-token in seconds.
    pub ttft_p90_max: f64,
    /// Maximum P99 time-between-tokens in seconds.
    pub tbt_p99_max: f64,
}

impl Default for SloConstraints {
    fn default() -> Self {
        SloConstraints {
            ttft_p90_max: 2.0,
            tbt_p99_max: 0.2,
        }
    }
}

impl SloConstraints {
    /// Whether an evaluation satisfies both SLOs.
    pub fn satisfied_by(&self, eval: &ConfigEvaluation) -> bool {
        eval.ttft_p90 <= self.ttft_p90_max && eval.tbt_p99 <= self.tbt_p99_max
    }
}

/// Computes the Pareto frontier over (latency, QPS/$): evaluations not
/// dominated by any other with both lower `latency_of` and higher QPS/$.
///
/// Returns indices into `evals`, sorted by latency ascending.
pub fn pareto_frontier(
    evals: &[ConfigEvaluation],
    latency_of: impl Fn(&ConfigEvaluation) -> f64,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..evals.len()).collect();
    order.sort_by(|&a, &b| {
        latency_of(&evals[a])
            .partial_cmp(&latency_of(&evals[b]))
            .expect("no NaN latency")
    });
    let mut frontier = Vec::new();
    let mut best_qpd = f64::NEG_INFINITY;
    for idx in order {
        let q = evals[idx].qps_per_dollar;
        if q > best_qpd {
            frontier.push(idx);
            best_qpd = q;
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ConfigEvaluation;

    fn eval(label: &str, qpd: f64, ttft: f64, tbt: f64) -> ConfigEvaluation {
        ConfigEvaluation {
            config: None,
            label: label.to_string(),
            capacity_qps: qpd * 10.0,
            qps_per_dollar: qpd,
            ttft_p90: ttft,
            tbt_p99: tbt,
            sched_delay_p99: 0.1,
            mfu: 0.3,
            kv_utilization: 0.5,
            dollars_per_hour: 10.0,
        }
    }

    #[test]
    fn slo_filtering() {
        let slo = SloConstraints::default();
        assert!(slo.satisfied_by(&eval("ok", 1.0, 1.5, 0.1)));
        assert!(!slo.satisfied_by(&eval("slow-ttft", 1.0, 2.5, 0.1)));
        assert!(!slo.satisfied_by(&eval("slow-tbt", 1.0, 1.5, 0.3)));
    }

    #[test]
    fn frontier_excludes_dominated() {
        let evals = vec![
            eval("a", 1.0, 1.0, 0.1), // frontier: cheapest latency
            eval("b", 2.0, 2.0, 0.1), // frontier: better qpd at higher lat
            eval("c", 1.5, 3.0, 0.1), // dominated by b (worse both)
            eval("d", 3.0, 4.0, 0.1), // frontier
        ];
        let f = pareto_frontier(&evals, |e| e.ttft_p90);
        let labels: Vec<&str> = f.iter().map(|&i| evals[i].label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "d"]);
    }

    #[test]
    fn frontier_single_point() {
        let evals = vec![eval("only", 1.0, 1.0, 0.1)];
        assert_eq!(pareto_frontier(&evals, |e| e.tbt_p99), vec![0]);
    }

    #[test]
    fn frontier_empty() {
        let evals: Vec<ConfigEvaluation> = Vec::new();
        assert!(pareto_frontier(&evals, |e| e.ttft_p90).is_empty());
    }
}
