//! Deployment configuration space enumeration (paper §6 "Search space" and
//! §7.3 "Deployment Configurations").

use serde::{Deserialize, Serialize};
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, GlobalPolicyKind, SchedulerConfig};
use vidur_simulator::ClusterConfig;

/// The knobs Vidur-Search sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidate GPU SKUs.
    pub skus: Vec<GpuSku>,
    /// Candidate tensor-parallel degrees.
    pub tp_degrees: Vec<u32>,
    /// Candidate pipeline-parallel degrees.
    pub pp_degrees: Vec<u32>,
    /// Candidate batching policies (Sarathi appears once per chunk size).
    pub schedulers: Vec<BatchPolicyKind>,
    /// Candidate maximum batch sizes.
    pub batch_sizes: Vec<usize>,
    /// Candidate global routing policies. Non-round-robin entries make the
    /// capacity probe simulate the full replica set (the single-replica
    /// scaling shortcut only holds for independent round-robin queues).
    pub routing: Vec<GlobalPolicyKind>,
    /// GPU budget across all replicas (paper: 16).
    pub max_gpus: u32,
}

impl SearchSpace {
    /// The paper's §7.3 space: A100/H100, TP/PP ∈ {1,2,4}, vLLM / Orca+ /
    /// Sarathi-Serve (chunks 512/1K/2K), batch sizes 32..512, 16 GPUs.
    pub fn paper() -> Self {
        SearchSpace {
            skus: GpuSku::paper_skus(),
            tp_degrees: vec![1, 2, 4],
            pp_degrees: vec![1, 2, 4],
            schedulers: vec![
                BatchPolicyKind::Vllm,
                BatchPolicyKind::OrcaPlus,
                BatchPolicyKind::SarathiServe { chunk_size: 512 },
                BatchPolicyKind::SarathiServe { chunk_size: 1024 },
                BatchPolicyKind::SarathiServe { chunk_size: 2048 },
            ],
            batch_sizes: vec![32, 64, 128, 256, 512],
            routing: vec![GlobalPolicyKind::RoundRobin],
            max_gpus: 16,
        }
    }

    /// A reduced space for fast regeneration runs and CI: one chunk size,
    /// three batch sizes, TP/PP ∈ {1,2,4}.
    pub fn reduced() -> Self {
        SearchSpace {
            skus: GpuSku::paper_skus(),
            tp_degrees: vec![1, 2, 4],
            pp_degrees: vec![1, 2],
            schedulers: vec![
                BatchPolicyKind::Vllm,
                BatchPolicyKind::OrcaPlus,
                BatchPolicyKind::SarathiServe { chunk_size: 512 },
            ],
            batch_sizes: vec![64, 256],
            routing: vec![GlobalPolicyKind::RoundRobin],
            max_gpus: 16,
        }
    }

    /// Enumerates every *valid* deployment configuration for `model`:
    /// parallelism must shard the model, weights must fit device memory,
    /// and the replica must fit the GPU budget (replicas fill it).
    pub fn enumerate(&self, model: &ModelSpec) -> Vec<ClusterConfig> {
        let mut out = Vec::new();
        for sku in &self.skus {
            for &tp in &self.tp_degrees {
                for &pp in &self.pp_degrees {
                    let par = ParallelismConfig::new(tp, pp);
                    if par.validate_for(model).is_err() {
                        continue;
                    }
                    let gpus = par.gpus_per_replica();
                    if gpus > self.max_gpus {
                        continue;
                    }
                    let replicas = (self.max_gpus / gpus) as usize;
                    for &policy in &self.schedulers {
                        for &bs in &self.batch_sizes {
                            for &routing in &self.routing {
                                // Paper: "the batch size gets divided by
                                // number of microbatches with PP".
                                let effective_bs = (bs / pp as usize).max(1);
                                let mut config = ClusterConfig::new(
                                    model.clone(),
                                    sku.clone(),
                                    par,
                                    replicas,
                                    SchedulerConfig::new(policy, effective_bs),
                                );
                                config.global_policy = routing;
                                if config.memory_plan().is_ok() {
                                    out.push(config);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_size_is_hundreds() {
        let n = SearchSpace::paper()
            .enumerate(&ModelSpec::llama2_7b())
            .len();
        assert!(n > 100, "{n}");
        assert!(n < 2_000, "{n}");
    }

    #[test]
    fn enumeration_filters_memory_misfits() {
        let configs = SearchSpace::paper().enumerate(&ModelSpec::llama2_70b());
        // 70B cannot run at TP1-PP1 on one 80 GB GPU.
        assert!(configs.iter().all(|c| c.parallelism.gpus_per_replica() > 1));
        assert!(!configs.is_empty());
    }

    #[test]
    fn replicas_fill_gpu_budget() {
        let configs = SearchSpace::paper().enumerate(&ModelSpec::llama2_7b());
        for c in &configs {
            assert_eq!(c.total_gpus(), 16, "{}", c.label());
        }
    }

    #[test]
    fn pp_divides_batch_size() {
        let space = SearchSpace {
            pp_degrees: vec![4],
            tp_degrees: vec![1],
            batch_sizes: vec![128],
            ..SearchSpace::paper()
        };
        let configs = space.enumerate(&ModelSpec::llama2_7b());
        assert!(!configs.is_empty());
        for c in &configs {
            assert_eq!(c.scheduler.max_batch_size, 32);
        }
    }

    #[test]
    fn routing_dimension_multiplies_space() {
        let base = SearchSpace::reduced();
        let n_base = base.enumerate(&ModelSpec::llama2_7b()).len();
        let routed = SearchSpace {
            routing: vec![
                GlobalPolicyKind::RoundRobin,
                GlobalPolicyKind::LeastOutstanding,
                GlobalPolicyKind::FairShare {
                    max_outstanding: 32,
                },
            ],
            ..base
        };
        let configs = routed.enumerate(&ModelSpec::llama2_7b());
        assert_eq!(configs.len(), 3 * n_base);
        // Labels distinguish routing variants of the same deployment.
        let mut labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), configs.len(), "routing must show in labels");
    }

    #[test]
    fn qwen_needs_multiple_gpus() {
        // Qwen-72B weights (~145 GB fp16) cannot fit one 80 GB device; at
        // least two-way sharding is required.
        let configs = SearchSpace::paper().enumerate(&ModelSpec::qwen_72b());
        assert!(!configs.is_empty());
        assert!(configs
            .iter()
            .all(|c| c.parallelism.gpus_per_replica() >= 2));
    }
}
