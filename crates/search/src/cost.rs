//! Search-cost accounting (paper Table 2).
//!
//! Every simulation run stands in for a real deployment experiment: the
//! experiment would have occupied `simulated_makespan × total_gpus` GPU-time
//! at the SKU's rental price. The ledger accumulates that *projected actual
//! cost* alongside the measured simulation wall-clock, priced at the paper's
//! 96-core CPU machine rate ($9.93/hour on Azure), yielding the savings
//! factors Table 2 reports.

use serde::{Deserialize, Serialize};
use vidur_simulator::{ClusterConfig, SimulationReport};

/// Azure 96-core CPU machine rental price per hour (paper §1/§6).
pub const CPU_MACHINE_PRICE_PER_HOUR: f64 = 9.93;

/// Accumulates projected-actual vs simulated search costs, plus the
/// stage-time shape-cache hit/miss counters of the runs it priced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    runs: u64,
    projected_gpu_hours: f64,
    projected_dollars: f64,
    wall_clock_secs: f64,
    cache_hits: u64,
    cache_misses: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one simulation run's projected hardware cost.
    pub fn record_run(&mut self, report: &SimulationReport, config: &ClusterConfig) {
        self.runs += 1;
        let gpu_hours = report.makespan_secs / 3600.0 * config.total_gpus() as f64;
        self.projected_gpu_hours += gpu_hours;
        self.projected_dollars += gpu_hours * config.sku.price_per_gpu_hour;
    }

    /// Adds measured simulation wall-clock seconds.
    pub fn add_wall_clock(&mut self, secs: f64) {
        self.wall_clock_secs += secs;
    }

    /// Records a stage-timer cache's hit/miss counters (see
    /// [`vidur_simulator::CacheStats`]).
    pub fn record_cache(&mut self, stats: vidur_simulator::CacheStats) {
        self.cache_hits += stats.hits;
        self.cache_misses += stats.misses;
    }

    /// Batch-shape cache hits across recorded runs.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Batch-shape cache misses across recorded runs.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Fraction of stage-time lookups served from the shape cache (0 when
    /// no lookups were recorded).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Simulation runs recorded.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Projected GPU-hours a hardware-based search would have used.
    pub fn projected_gpu_hours(&self) -> f64 {
        self.projected_gpu_hours
    }

    /// Projected dollars a hardware-based search would have cost.
    pub fn projected_dollars(&self) -> f64 {
        self.projected_dollars
    }

    /// Measured simulation wall-clock in seconds.
    pub fn wall_clock_secs(&self) -> f64 {
        self.wall_clock_secs
    }

    /// Simulation cost in dollars at the paper's CPU machine price.
    pub fn simulation_dollars(&self) -> f64 {
        self.wall_clock_secs / 3600.0 * CPU_MACHINE_PRICE_PER_HOUR
    }

    /// Actual/simulated cost savings factor (Table 2 rightmost column).
    pub fn savings_factor(&self) -> f64 {
        let sim = self.simulation_dollars();
        if sim <= 0.0 {
            f64::INFINITY
        } else {
            self.projected_dollars / sim
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.runs += other.runs;
        self.projected_gpu_hours += other.projected_gpu_hours;
        self.projected_dollars += other.projected_dollars;
        self.wall_clock_secs += other.wall_clock_secs;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_hardware::GpuSku;
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_simulator::metrics::DigestSummary;

    fn fake_report(makespan: f64) -> SimulationReport {
        SimulationReport {
            num_requests: 1,
            completed: 1,
            makespan_secs: makespan,
            throughput_qps: 1.0,
            scheduling_delay: DigestSummary::default(),
            ttft: DigestSummary::default(),
            tbt: DigestSummary::default(),
            normalized_e2e: DigestSummary::default(),
            normalized_exec: DigestSummary::default(),
            e2e: DigestSummary::default(),
            mfu: 0.0,
            mbu: 0.0,
            kv_utilization: 0.0,
            preemptions: 0,
            total_batches: 0,
            total_tokens: 0,
            mean_batch_tokens: 0.0,
            mean_batch_size: 0.0,
            energy_kwh: 0.0,
            mean_power_watts: 0.0,
            energy_wh_per_request: 0.0,
            operator_time_breakdown: Vec::new(),
            per_tenant: Vec::new(),
            timeseries: Vec::new(),
            distinct_tenants_est: None,
            retries: 0,
            requeued: 0,
            evicted_by_crash: 0,
            replica_hours: 0.0,
            replica_availability: Vec::new(),
            prefix_hits: 0,
            prefix_tokens_saved: 0,
            prefix_hit_rate: 0.0,
        }
    }

    fn config() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            4,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 32),
        )
    }

    #[test]
    fn gpu_hours_projection() {
        let mut l = CostLedger::new();
        // 4 GPUs for 3600 simulated seconds = 4 GPU-hours.
        l.record_run(&fake_report(3600.0), &config());
        assert!((l.projected_gpu_hours() - 4.0).abs() < 1e-9);
        assert!((l.projected_dollars() - 4.0 * 2.21).abs() < 1e-9);
        assert_eq!(l.runs(), 1);
    }

    #[test]
    fn savings_factor_huge_for_fast_sims() {
        let mut l = CostLedger::new();
        l.record_run(&fake_report(36_000.0), &config()); // 40 GPU-hours
        l.add_wall_clock(1.0); // one second of CPU
        assert!(l.savings_factor() > 1_000.0, "{}", l.savings_factor());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CostLedger::new();
        a.record_run(&fake_report(100.0), &config());
        a.add_wall_clock(2.0);
        let mut b = CostLedger::new();
        b.record_run(&fake_report(200.0), &config());
        b.add_wall_clock(3.0);
        a.merge(&b);
        assert_eq!(a.runs(), 2);
        assert!((a.wall_clock_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_infinite_savings() {
        assert!(CostLedger::new().savings_factor().is_infinite());
    }

    #[test]
    fn cache_stats_accumulate_and_merge() {
        use vidur_simulator::CacheStats;
        let mut a = CostLedger::new();
        assert_eq!(a.cache_hit_rate(), 0.0);
        a.record_cache(CacheStats {
            hits: 30,
            misses: 10,
        });
        let mut b = CostLedger::new();
        b.record_cache(CacheStats {
            hits: 10,
            misses: 0,
        });
        a.merge(&b);
        assert_eq!(a.cache_hits(), 40);
        assert_eq!(a.cache_misses(), 10);
        assert!((a.cache_hit_rate() - 0.8).abs() < 1e-12);
    }
}
