//! Deterministic random number generation for simulations.
//!
//! Every stochastic component of Vidur (arrival processes, workload length
//! sampling, hardware measurement noise, random-forest bootstrapping) draws
//! from a [`SimRng`], a self-contained xoshiro256** generator seeded via
//! SplitMix64. Identical seeds produce identical simulations on every
//! platform, which is what makes fidelity experiments and configuration
//! searches reproducible.
//!
//! The distribution helpers implemented here are exactly the ones the rest of
//! the framework needs: uniform, normal (Box–Muller), log-normal, exponential
//! (inverse CDF), gamma (Marsaglia–Tsang), and Poisson (Knuth / normal
//! approximation for large means).

use serde::{Deserialize, Serialize};

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// # Example
///
/// ```
/// use vidur_core::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed.
    ///
    /// The seed is expanded through SplitMix64 so that small or correlated
    /// seeds (0, 1, 2, ...) still produce well-distributed initial states.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each replica / operator / trace its own stream so that
    /// adding a consumer does not perturb the draws seen by others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Lemire's multiply-shift with rejection for unbiased output.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        // Avoid log(0) by nudging u away from zero.
        let u = (self.next_f64()).max(f64::MIN_POSITIVE);
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal draw parameterized by the *underlying* normal's `mu` and
    /// `sigma` (i.e. the result is `exp(N(mu, sigma^2))`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    /// Gamma draw with shape `k` and scale `theta` (Marsaglia–Tsang).
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0` or `theta <= 0`.
    pub fn gamma(&mut self, k: f64, theta: f64) -> f64 {
        assert!(k > 0.0 && theta > 0.0, "gamma parameters must be positive");
        if k < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
            let u = self.next_f64().max(f64::MIN_POSITIVE);
            return self.gamma(k + 1.0, theta) * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = self.next_f64().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
                return d * v3 * theta;
            }
        }
    }

    /// Poisson draw with the given mean.
    ///
    /// Uses Knuth's method for small means and a rounded normal
    /// approximation for large ones.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or non-finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean.is_finite() && mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.normal_with(mean, mean.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index needs positive total weight"
        );
        let mut u = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_mean_std(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(3);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(13);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.normal()).collect();
        let (mean, std) = sample_mean_std(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((std - 1.0).abs() < 0.02, "std {std}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(17);
        let rate = 4.0;
        let samples: Vec<f64> = (0..50_000).map(|_| rng.exponential(rate)).collect();
        let (mean, _) = sample_mean_std(&samples);
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = SimRng::new(19);
        let (k, theta) = (3.0, 2.0);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.gamma(k, theta)).collect();
        let (mean, std) = sample_mean_std(&samples);
        assert!((mean - k * theta).abs() < 0.15, "mean {mean}");
        assert!((std - (k).sqrt() * theta).abs() < 0.15, "std {std}");
    }

    #[test]
    fn gamma_shape_below_one() {
        let mut rng = SimRng::new(23);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.gamma(0.5, 1.0)).collect();
        let (mean, _) = sample_mean_std(&samples);
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_small_and_large_mean() {
        let mut rng = SimRng::new(29);
        let small: Vec<f64> = (0..50_000).map(|_| rng.poisson(3.0) as f64).collect();
        let (mean, _) = sample_mean_std(&small);
        assert!((mean - 3.0).abs() < 0.05, "small mean {mean}");
        let large: Vec<f64> = (0..50_000).map(|_| rng.poisson(200.0) as f64).collect();
        let (mean, std) = sample_mean_std(&large);
        assert!((mean - 200.0).abs() < 0.5, "large mean {mean}");
        assert!((std - 200.0_f64.sqrt()).abs() < 0.5, "large std {std}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = SimRng::new(31);
        let mut samples: Vec<f64> = (0..50_001).map(|_| rng.log_normal(1.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[25_000];
        assert!((median - 1.0_f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(37);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(41);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn next_f64_in_unit_interval(seed in any::<u64>()) {
            let mut rng = SimRng::new(seed);
            for _ in 0..32 {
                let x = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut rng = SimRng::new(seed);
            for _ in 0..16 {
                prop_assert!(rng.next_below(n) < n);
            }
        }

        #[test]
        fn exponential_positive(seed in any::<u64>(), rate in 0.001f64..1000.0) {
            let mut rng = SimRng::new(seed);
            prop_assert!(rng.exponential(rate) >= 0.0);
        }
    }
}
