//! Shard-local event queues with a deterministic global merge order.
//!
//! The sharded simulator gives each shard (a subset of replicas) its own
//! event queue and lets it run its whole simulation independently; the
//! per-event effect logs are then committed in a single global order that is
//! bit-identical to what the sequential [`EventQueue`](crate::event::EventQueue)
//! would have produced. That works because the sequential queue's order is
//! fully determined by `(time, seq)` where `seq` is the global insertion
//! counter, and the sharded run can reconstruct every event's global `seq`
//! after the fact:
//!
//! * **Arrivals** are pushed up front, in trace order, before any event is
//!   handled — so arrival `i`'s global seq is simply `i`, and every dynamic
//!   event's seq is `>= N` (the arrival count). Arrivals carry their global
//!   seq directly ([`ShardQueue::push_arrival`]).
//! * **Dynamic events** (wakeups, completions) get a per-shard local counter
//!   ([`ShardQueue::push`]). Within one shard the local-counter order equals
//!   the global-seq order restricted to that shard: a shard handles its
//!   events in the same relative order the sequential engine would (by
//!   induction over the merged order), and pushes within one handler receive
//!   consecutive global seqs in call order. So `(time, Arrival(i) <
//!   Local(j))` sorts the shard's queue exactly as the sequential queue
//!   sorts that shard's events.
//! * At merge time, [`ShardStamper`] re-derives the actual global seq: when
//!   an entry is committed, its children claim the next global counter
//!   values in push order. A child can only become its shard's head after
//!   its parent committed (the parent precedes it in shard order), so the
//!   stamp is always present when the merge needs to compare heads.
//!
//! The merge itself is then trivial: repeatedly commit the shard head with
//! the lowest `(time, global_seq)`.

use crate::event::{EventPush, KeyedPairingHeap};
use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Tie-break key for shard-local ordering at equal timestamps.
///
/// `Arrival` carries the event's *global* sequence number (its trace index);
/// `Local` carries a per-shard push counter. The derived `Ord` puts every
/// `Arrival` before every `Local`, which matches the sequential engine:
/// arrivals are pushed before the run starts, so their seqs are smaller than
/// any dynamic event's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardKey {
    /// Pre-pushed arrival with its global sequence number.
    Arrival(u64),
    /// Dynamic event with its shard-local push counter.
    Local(u64),
}

/// A shard-local event queue ordered by `(time, ShardKey)`.
///
/// Built on the same slab-backed pairing heap as the sequential queue, so
/// steady-state churn is allocation-free. Cloning snapshots the pending set
/// and the local-push counter, which is what lets the speculative sharded
/// path checkpoint a shard at a window boundary and re-run the window.
#[derive(Clone)]
pub struct ShardQueue<E> {
    heap: KeyedPairingHeap<(SimTime, ShardKey), E>,
    local_pushes: u64,
}

impl<E> Default for ShardQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for ShardQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardQueue")
            .field("len", &self.heap.len())
            .field("local_pushes", &self.local_pushes)
            .finish()
    }
}

impl<E> ShardQueue<E> {
    /// Creates an empty shard queue.
    pub fn new() -> Self {
        ShardQueue {
            heap: KeyedPairingHeap::new(),
            local_pushes: 0,
        }
    }

    /// Pushes a pre-routed arrival carrying its global sequence number
    /// (= its trace index). Must only be called before the shard starts
    /// popping.
    pub fn push_arrival(&mut self, time: SimTime, global_seq: u64, payload: E) {
        self.heap
            .push((time, ShardKey::Arrival(global_seq)), payload);
    }

    /// Pushes a dynamic event, assigning the next shard-local id.
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.heap
            .push((time, ShardKey::Local(self.local_pushes)), payload);
        self.local_pushes += 1;
    }

    /// Removes the earliest event together with its shard key.
    pub fn pop(&mut self) -> Option<(SimTime, ShardKey, E)> {
        let ((time, key), payload) = self.heap.pop()?;
        Some((time, key, payload))
    }

    /// Borrows the `(time, key)` of the earliest pending event without
    /// removing it. The windowed sharded runner uses this to stop a shard
    /// exactly at the next window boundary.
    pub fn peek(&self) -> Option<(SimTime, ShardKey)> {
        self.heap.peek().copied()
    }

    /// Total number of dynamic pushes so far; the delta across a handler
    /// gives the handler's child count for the merge log.
    pub fn local_pushes(&self) -> u64 {
        self.local_pushes
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> EventPush<E> for ShardQueue<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        ShardQueue::push(self, time, payload)
    }
}

/// Reconstructs global sequence numbers for one shard's event stream during
/// the merge.
///
/// The merge drives one stamper per shard: [`resolve`](Self::resolve) turns
/// the shard key of the stream head into the global seq used for cross-shard
/// comparison, and [`claim_children`](Self::claim_children) assigns the next
/// global counter values to the events a committed handler pushed. The stamp
/// table only holds stamps for pushed-but-not-yet-popped dynamic events, so
/// its size is bounded by the shard's queue depth, not by the run length.
#[derive(Debug, Default, Clone)]
pub struct ShardStamper {
    stamps: HashMap<u64, u64>,
    next_child: u64,
}

impl ShardStamper {
    /// Creates a stamper with no pending stamps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the global sequence number for a stream-head key, consuming
    /// the stamp for dynamic events.
    ///
    /// # Panics
    ///
    /// Panics if a dynamic event's parent has not been committed yet — that
    /// would mean the per-shard stream is out of order (a simulator bug).
    pub fn resolve(&mut self, key: ShardKey) -> u64 {
        match key {
            ShardKey::Arrival(seq) => seq,
            ShardKey::Local(pid) => self
                .stamps
                .remove(&pid)
                .expect("shard stream head popped before its parent committed"),
        }
    }

    /// Stamps the `n` children pushed by the handler just committed, drawing
    /// their global seqs from `counter` in push order.
    pub fn claim_children(&mut self, n: u64, counter: &mut u64) {
        for _ in 0..n {
            self.stamps.insert(self.next_child, *counter);
            self.next_child += 1;
            *counter += 1;
        }
    }

    /// Number of outstanding stamps (pushed but not yet resolved).
    pub fn pending(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use proptest::prelude::*;

    /// Deterministic toy handler: how many children does event `id` at
    /// depth `d` spawn, and with what delays? Zero delays are common so
    /// equal-timestamp ties pile up across shards — exactly the hazard the
    /// merge must get right.
    fn spawn_plan(id: u64, depth: u32) -> Vec<u64> {
        if depth >= 3 {
            return Vec::new();
        }
        let n = ((id ^ (depth as u64)) % 3) as usize;
        (0..n as u64)
            .map(|j| (id.wrapping_mul(31) + j) % 3)
            .collect()
    }

    fn child_id(id: u64, j: u64) -> u64 {
        id.wrapping_mul(1_000_003).wrapping_add(j + 1)
    }

    /// Sequential oracle: one global queue, arrivals pushed in index order.
    fn run_sequential(arrivals: &[(u64, usize)]) -> Vec<(SimTime, u64)> {
        let mut q = EventQueue::new();
        for (i, &(t, _shard)) in arrivals.iter().enumerate() {
            q.push(SimTime::from_nanos(t), (i as u64, 0u32));
        }
        let mut order = Vec::new();
        while let Some((time, (id, depth))) = q.pop() {
            order.push((time, id));
            for (j, delay) in spawn_plan(id, depth).into_iter().enumerate() {
                q.push(
                    time + crate::time::SimDuration::from_nanos(delay),
                    (child_id(id, j as u64), depth + 1),
                );
            }
        }
        order
    }

    /// Sharded run: each shard runs its whole stream independently and logs
    /// `(time, key, id, n_children)`; the logs are then merged by
    /// `(time, global_seq)` via `ShardStamper`.
    fn run_sharded(arrivals: &[(u64, usize)], num_shards: usize) -> Vec<(SimTime, u64)> {
        let mut logs: Vec<Vec<(SimTime, ShardKey, u64, u64)>> = vec![Vec::new(); num_shards];
        for (s, log) in logs.iter_mut().enumerate() {
            let mut q: ShardQueue<(u64, u32)> = ShardQueue::new();
            for (i, &(t, shard)) in arrivals.iter().enumerate() {
                if shard == s {
                    q.push_arrival(SimTime::from_nanos(t), i as u64, (i as u64, 0u32));
                }
            }
            while let Some((time, key, (id, depth))) = q.pop() {
                let before = q.local_pushes();
                for (j, delay) in spawn_plan(id, depth).into_iter().enumerate() {
                    q.push(
                        time + crate::time::SimDuration::from_nanos(delay),
                        (child_id(id, j as u64), depth + 1),
                    );
                }
                log.push((time, key, id, q.local_pushes() - before));
            }
        }

        // Merge: commit the lowest (time, global_seq) head until all logs
        // drain, stamping children as their parents commit.
        let mut stampers: Vec<ShardStamper> =
            (0..num_shards).map(|_| ShardStamper::new()).collect();
        let mut cursors = vec![0usize; num_shards];
        let mut heads: Vec<Option<(SimTime, u64)>> = vec![None; num_shards];
        let mut counter = arrivals.len() as u64;
        let mut order = Vec::new();
        loop {
            for s in 0..num_shards {
                if heads[s].is_none() && cursors[s] < logs[s].len() {
                    let (time, key, _, _) = logs[s][cursors[s]];
                    heads[s] = Some((time, stampers[s].resolve(key)));
                }
            }
            let Some(best) = (0..num_shards)
                .filter(|&s| heads[s].is_some())
                .min_by_key(|&s| heads[s].unwrap())
            else {
                break;
            };
            let (time, _seq) = heads[best].take().unwrap();
            let (_, _, id, children) = logs[best][cursors[best]];
            cursors[best] += 1;
            stampers[best].claim_children(children, &mut counter);
            order.push((time, id));
        }
        for s in &stampers {
            assert_eq!(s.pending(), 0, "all stamps consumed");
        }
        order
    }

    #[test]
    fn arrival_sorts_before_local_at_equal_time() {
        let mut q: ShardQueue<&str> = ShardQueue::new();
        let t = SimTime::from_nanos(5);
        q.push(t, "local-0");
        q.push_arrival(t, 999, "arrival");
        q.push(t, "local-1");
        assert_eq!(q.pop().unwrap().2, "arrival");
        assert_eq!(q.pop().unwrap().2, "local-0");
        assert_eq!(q.pop().unwrap().2, "local-1");
    }

    #[test]
    fn stamper_resolves_in_push_order() {
        let mut s = ShardStamper::new();
        let mut counter = 10u64;
        s.claim_children(2, &mut counter);
        assert_eq!(counter, 12);
        assert_eq!(s.resolve(ShardKey::Local(0)), 10);
        assert_eq!(s.resolve(ShardKey::Local(1)), 11);
        assert_eq!(s.resolve(ShardKey::Arrival(3)), 3);
        assert_eq!(s.pending(), 0);
    }

    proptest! {
        /// Satellite: flood the queues with equal-timestamp events spread
        /// across shards and assert the merged pop order matches the
        /// sequential queue exactly — times drawn from 0..4 ns so nearly
        /// everything ties, and handlers spawn zero-delay children that tie
        /// with their parents and with other shards' arrivals.
        #[test]
        fn merged_order_matches_sequential(
            arrivals in proptest::collection::vec((0u64..4, 0usize..5), 1..120),
            num_shards in 1usize..5,
        ) {
            let arrivals: Vec<(u64, usize)> = arrivals
                .into_iter()
                .map(|(t, s)| (t, s % num_shards))
                .collect();
            let sequential = run_sequential(&arrivals);
            let sharded = run_sharded(&arrivals, num_shards);
            prop_assert_eq!(sharded, sequential);
        }

        /// Same property with spread-out timestamps: the merge must also be
        /// exact when shards genuinely interleave in time.
        #[test]
        fn merged_order_matches_sequential_spread(
            arrivals in proptest::collection::vec((0u64..1_000, 0usize..4), 1..80),
            num_shards in 1usize..5,
        ) {
            let arrivals: Vec<(u64, usize)> = arrivals
                .into_iter()
                .map(|(t, s)| (t, s % num_shards))
                .collect();
            let sequential = run_sequential(&arrivals);
            let sharded = run_sharded(&arrivals, num_shards);
            prop_assert_eq!(sharded, sequential);
        }
    }
}
