//! # vidur-core
//!
//! Foundation crate for the Vidur LLM-inference simulation framework.
//!
//! This crate provides the substrate every other Vidur crate builds on:
//!
//! * [`time`] — nanosecond-resolution simulation time ([`SimTime`]) and
//!   durations ([`SimDuration`]) with total ordering, suitable for use as
//!   discrete-event keys.
//! * [`rng`] — deterministic, seedable random number generation
//!   ([`rng::SimRng`]) with the distribution helpers the workload generators
//!   and the hardware noise model need (exponential, log-normal, gamma,
//!   Poisson). Simulations are reproducible: the same seed always yields the
//!   same trace and the same measurements.
//! * [`event`] — a generic discrete-event queue ([`event::EventQueue`]) with
//!   stable FIFO tie-breaking at equal timestamps, and a small driver loop
//!   ([`event::Simulation`], [`event::run`]). The queue is a slab-backed
//!   pairing heap ([`event::KeyedPairingHeap`]); the previous binary-heap
//!   implementation survives as [`event::BaselineQueue`], the differential
//!   oracle.
//! * [`shard`] — shard-local event queues ([`shard::ShardQueue`]) whose pop
//!   streams can be merged back into the exact sequential global order
//!   ([`shard::ShardStamper`]), the foundation of the parallel simulator.
//! * [`metrics`] — streaming metric primitives: an exact quantile digest,
//!   time-weighted utilization series, and fixed-width histograms.
//! * [`mergeable`] — mergeable summary sketches: a deterministic t-digest
//!   ([`mergeable::TDigest`]) whose sealed state is invariant under merge
//!   order, and a HyperLogLog distinct-count sketch
//!   ([`mergeable::HyperLogLog`]). These are the building blocks of the
//!   simulator's fold-in-the-shards metrics mode.
//!
//! # Example
//!
//! ```
//! use vidur_core::time::{SimTime, SimDuration};
//! use vidur_core::event::EventQueue;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::from_secs_f64(1.0), "b");
//! q.push(SimTime::ZERO, "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (SimTime::ZERO, "a"));
//! # let _ = SimDuration::from_secs_f64(0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod mergeable;
pub mod metrics;
pub mod rng;
pub mod shard;
pub mod time;

pub use event::{BaselineQueue, EventPush, EventQueue, KeyedPairingHeap, Simulation};
pub use mergeable::{HyperLogLog, TDigest};
pub use metrics::{
    Histogram, P2Quantile, QuantileDigest, QuantileMode, StreamingSummary, TimeWeightedSeries,
};
pub use rng::SimRng;
pub use shard::{ShardKey, ShardQueue, ShardStamper};
pub use time::{SimDuration, SimTime};
