//! Simulation time and durations.
//!
//! Vidur simulates LLM inference at iteration granularity where individual
//! kernel launches take microseconds; floating-point timestamps accumulate
//! rounding error and, worse, make event ordering platform-dependent. Time is
//! therefore represented as an integer number of **nanoseconds** since the
//! simulation epoch. Cost models produce `f64` seconds which are converted at
//! the boundary via [`SimDuration::from_secs_f64`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulated time, in nanoseconds since the simulation epoch.
///
/// `SimTime` is totally ordered and hashable, which makes it usable as the
/// primary key of the discrete-event queue.
///
/// # Example
///
/// ```
/// use vidur_core::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_secs_f64(), 0.005);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use vidur_core::time::SimDuration;
/// let d = SimDuration::from_secs_f64(1.5);
/// assert_eq!(d.as_millis(), 1_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from seconds as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Returns the number of whole nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time since epoch in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is later than `self`, which keeps
    /// metric accounting robust against zero-length scheduling races.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from seconds as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Returns the number of whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the number of whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the number of whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked duration addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    assert!(
        nanos <= u64::MAX as f64,
        "time overflow: {secs} seconds does not fit in u64 nanoseconds"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "duration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn time_ordering_and_arith() {
        let a = SimTime::from_secs_f64(1.0);
        let b = a + SimDuration::from_millis(500);
        assert!(b > a);
        assert_eq!(b - a, SimDuration::from_millis(500));
        assert_eq!(
            b.saturating_duration_since(a),
            SimDuration::from_millis(500)
        );
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d * 0.5, SimDuration::from_millis(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    proptest! {
        #[test]
        fn add_then_sub_roundtrips(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
            let t = SimTime::from_nanos(base);
            let d = SimDuration::from_nanos(delta);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn ordering_matches_nanos(a in any::<u64>(), b in any::<u64>()) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }

        #[test]
        fn secs_f64_roundtrip_small(ms in 0u64..10_000_000u64) {
            let d = SimDuration::from_millis(ms);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            // f64 has 52 bits of mantissa; millisecond-scale values roundtrip.
            prop_assert_eq!(back, d);
        }
    }
}
