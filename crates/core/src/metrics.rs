//! Metric primitives: quantile digests, time-weighted series, histograms.
//!
//! Vidur reports request-level distributions (TTFT, TBT, normalized latency —
//! median/P90/P95/P99) and cluster-level utilization (MFU, MBU, KV-cache
//! occupancy over time). This module provides the small set of statistics
//! containers those reports are built from.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An exact quantile digest: stores every sample and sorts lazily.
///
/// Vidur simulations track at most a few hundred thousand requests, so exact
/// quantiles are affordable and avoid the sketch-accuracy caveats that would
/// otherwise muddy fidelity comparisons.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::QuantileDigest;
/// let mut d = QuantileDigest::new();
/// for i in 1..=100 {
///     d.record(i as f64);
/// }
/// assert_eq!(d.quantile(0.5), Some(50.5));
/// assert_eq!(d.min(), Some(1.0));
/// assert_eq!(d.max(), Some(100.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantileDigest {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: std::cell::Cell<bool>,
    sum: f64,
}

impl QuantileDigest {
    /// Creates an empty digest.
    pub fn new() -> Self {
        QuantileDigest {
            samples: Vec::new(),
            sorted: std::cell::Cell::new(true),
            sum: 0.0,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        self.samples.push(value);
        self.sorted.set(false);
        self.sum += value;
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    fn ensure_sorted(&self) -> &[f64] {
        if !self.sorted.get() {
            // Interior sort through a raw pointer would be UB; instead we
            // only ever sort through &mut. Public read paths go through
            // `quantile`/`min`/`max` below which take &self, so keep a sorted
            // shadow: sort on demand via unsafe-free approach — clone-free by
            // sorting in `record`'s amortized path is wasteful, so we accept
            // the &mut requirement and provide `quantile` on &self using a
            // sorted copy only when dirty. Simpler: sort here via interior
            // mutability is not possible on Vec<f64> without RefCell; the
            // digest therefore sorts eagerly in the rare dirty case.
            unreachable!("ensure_sorted called while dirty; use sorted_samples()")
        } else {
            &self.samples
        }
    }

    fn sorted_samples(&self) -> std::borrow::Cow<'_, [f64]> {
        if self.sorted.get() {
            std::borrow::Cow::Borrowed(self.ensure_sorted())
        } else {
            let mut copy = self.samples.clone();
            copy.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in digest"));
            std::borrow::Cow::Owned(copy)
        }
    }

    /// Sorts the backing storage so subsequent `quantile` calls are
    /// allocation-free. Called automatically by the report builders.
    pub fn seal(&mut self) {
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in digest"));
        self.sorted.set(true);
    }

    /// Returns the `q`-quantile (0 ≤ q ≤ 1) with linear interpolation, or
    /// `None` if the digest is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        let sorted = self.sorted_samples();
        let n = sorted.len();
        if n == 1 {
            return Some(sorted[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Immutable view of the raw samples (unsorted).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another digest into this one.
    pub fn merge(&mut self, other: &QuantileDigest) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted.set(false);
    }
}

impl FromIterator<f64> for QuantileDigest {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut d = QuantileDigest::new();
        for x in iter {
            d.record(x);
        }
        d
    }
}

impl Extend<f64> for QuantileDigest {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// A step function of time used for utilization metrics (KV occupancy, busy
/// GPUs, outstanding requests). Values are weighted by how long they persist.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::TimeWeightedSeries;
/// use vidur_core::time::SimTime;
///
/// let mut s = TimeWeightedSeries::new();
/// s.record(SimTime::from_secs_f64(0.0), 0.0);
/// s.record(SimTime::from_secs_f64(1.0), 1.0);
/// s.record(SimTime::from_secs_f64(3.0), 0.0);
/// // value was 0 for 1s and 1 for 2s => mean 2/3
/// let mean = s.time_weighted_mean(SimTime::from_secs_f64(3.0)).unwrap();
/// assert!((mean - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeWeightedSeries {
    /// (time, value) change-points, non-decreasing in time.
    points: Vec<(SimTime, f64)>,
}

impl TimeWeightedSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeWeightedSeries { points: Vec::new() }
    }

    /// Records that the tracked value changed to `value` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous change-point.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "series updates must be in time order");
        }
        self.points.push((time, value));
    }

    /// Number of change-points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no change-points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Latest recorded value.
    pub fn current(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Time-weighted mean of the value from the first change-point to `end`.
    /// Returns `None` if the series is empty or `end` precedes the first
    /// change-point.
    pub fn time_weighted_mean(&self, end: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        if end <= first {
            return None;
        }
        let total = end.duration_since(first).as_secs_f64();
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let (t0, v) = w[0];
            let t1 = w[1].0.min(end);
            if t1 > t0 {
                acc += v * t1.duration_since(t0).as_secs_f64();
            }
            if w[1].0 >= end {
                return Some(acc / total);
            }
        }
        let (t_last, v_last) = *self.points.last()?;
        if end > t_last {
            acc += v_last * end.duration_since(t_last).as_secs_f64();
        }
        Some(acc / total)
    }

    /// Maximum recorded value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }

    /// Immutable view of the change-points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// Used for operator-level runtime distributions and batch-size profiles.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "histogram bounds must satisfy lo < hi");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * i as f64
    }
}

/// A running counter pair for utilization ratios such as MFU/MBU:
/// `achieved / peak` aggregated over time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationAccumulator {
    achieved: f64,
    available: f64,
}

impl UtilizationAccumulator {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one interval: `achieved` units of useful work out of `available`
    /// deliverable units.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is negative.
    pub fn add(&mut self, achieved: f64, available: f64) {
        assert!(achieved >= 0.0 && available >= 0.0);
        self.achieved += achieved;
        self.available += available;
    }

    /// Utilization in `[0, 1]`, or `None` if nothing was available.
    pub fn ratio(&self) -> Option<f64> {
        if self.available > 0.0 {
            Some((self.achieved / self.available).min(1.0))
        } else {
            None
        }
    }

    /// Total achieved units.
    pub fn achieved(&self) -> f64 {
        self.achieved
    }

    /// Total available units.
    pub fn available(&self) -> f64 {
        self.available
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn digest_quantiles_exact() {
        let d: QuantileDigest = (1..=5).map(|x| x as f64).collect();
        assert_eq!(d.quantile(0.0), Some(1.0));
        assert_eq!(d.quantile(1.0), Some(5.0));
        assert_eq!(d.median(), Some(3.0));
        assert_eq!(d.quantile(0.25), Some(2.0));
    }

    #[test]
    fn digest_interpolates() {
        let d: QuantileDigest = vec![0.0, 10.0].into_iter().collect();
        assert_eq!(d.quantile(0.5), Some(5.0));
        assert_eq!(d.quantile(0.9), Some(9.0));
    }

    #[test]
    fn digest_empty() {
        let d = QuantileDigest::new();
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.mean(), None);
        assert_eq!(d.std_dev(), None);
    }

    #[test]
    fn digest_stats() {
        let d: QuantileDigest = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(d.mean(), Some(5.0));
        assert_eq!(d.std_dev(), Some(2.0));
        assert_eq!(d.sum(), 40.0);
    }

    #[test]
    fn digest_merge() {
        let mut a: QuantileDigest = vec![1.0, 2.0].into_iter().collect();
        let b: QuantileDigest = vec![3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.median(), Some(2.5));
    }

    #[test]
    fn digest_seal_then_query() {
        let mut d: QuantileDigest = vec![3.0, 1.0, 2.0].into_iter().collect();
        d.seal();
        assert_eq!(d.median(), Some(2.0));
        assert_eq!(d.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn digest_rejects_nan() {
        QuantileDigest::new().record(f64::NAN);
    }

    #[test]
    fn series_mean_with_tail() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::ZERO, 2.0);
        s.record(SimTime::from_secs_f64(1.0), 4.0);
        // 2.0 for 1s, then 4.0 for 3s => (2 + 12) / 4
        let m = s.time_weighted_mean(SimTime::from_secs_f64(4.0)).unwrap();
        assert!((m - 3.5).abs() < 1e-9);
    }

    #[test]
    fn series_end_before_start() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::from_secs_f64(5.0), 1.0);
        assert_eq!(s.time_weighted_mean(SimTime::from_secs_f64(2.0)), None);
    }

    #[test]
    fn series_end_mid_window() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::ZERO, 1.0);
        s.record(SimTime::from_secs_f64(2.0), 3.0);
        s.record(SimTime::from_secs_f64(10.0), 100.0);
        let m = s.time_weighted_mean(SimTime::from_secs_f64(4.0)).unwrap();
        // 1.0 for 2s + 3.0 for 2s over 4s = 2.0
        assert!((m - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn series_rejects_backwards_time() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::from_secs_f64(1.0), 0.0);
        s.record(SimTime::ZERO, 0.0);
    }

    #[test]
    fn series_current_and_max() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::ZERO, 1.0);
        s.record(SimTime::from_secs_f64(1.0), 5.0);
        s.record(SimTime::from_secs_f64(2.0), 3.0);
        assert_eq!(s.current(), Some(3.0));
        assert_eq!(s.max_value(), Some(5.0));
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [5.0, 30.0, 55.0, 80.0, -1.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_lo(2), 50.0);
    }

    #[test]
    fn utilization_accumulator() {
        let mut u = UtilizationAccumulator::new();
        assert_eq!(u.ratio(), None);
        u.add(30.0, 100.0);
        u.add(20.0, 100.0);
        assert_eq!(u.ratio(), Some(0.25));
        assert_eq!(u.achieved(), 50.0);
        assert_eq!(u.available(), 200.0);
    }

    proptest! {
        #[test]
        fn quantiles_are_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let d: QuantileDigest = xs.drain(..).collect();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let vals: Vec<f64> = qs.iter().map(|&q| d.quantile(q).unwrap()).collect();
            for w in vals.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
            prop_assert_eq!(d.quantile(0.0).unwrap(), d.min().unwrap());
            prop_assert_eq!(d.quantile(1.0).unwrap(), d.max().unwrap());
        }

        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let d: QuantileDigest = xs.iter().copied().collect();
            let mean = d.mean().unwrap();
            prop_assert!(mean >= d.min().unwrap() - 1e-6);
            prop_assert!(mean <= d.max().unwrap() + 1e-6);
        }

        #[test]
        fn histogram_conserves_count(xs in proptest::collection::vec(-10f64..110.0, 0..256)) {
            let mut h = Histogram::new(0.0, 100.0, 7);
            for &x in &xs {
                h.record(x);
            }
            prop_assert_eq!(h.count() as usize, xs.len());
        }

        #[test]
        fn series_mean_bounded(vals in proptest::collection::vec(0f64..100.0, 1..50)) {
            let mut s = TimeWeightedSeries::new();
            for (i, &v) in vals.iter().enumerate() {
                s.record(SimTime::from_secs_f64(i as f64), v);
            }
            let end = SimTime::from_secs_f64(vals.len() as f64);
            let m = s.time_weighted_mean(end).unwrap();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
