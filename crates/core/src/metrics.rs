//! Metric primitives: quantile digests, time-weighted series, histograms.
//!
//! Vidur reports request-level distributions (TTFT, TBT, normalized latency —
//! median/P90/P95/P99) and cluster-level utilization (MFU, MBU, KV-cache
//! occupancy over time). This module provides the small set of statistics
//! containers those reports are built from.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An exact quantile digest: stores every sample; reads require sorted
/// (sealed) storage.
///
/// Vidur simulations track at most a few hundred thousand requests, so exact
/// quantiles are affordable and avoid the sketch-accuracy caveats that would
/// otherwise muddy fidelity comparisons. For per-token streams on very long
/// runs, [`StreamingSummary`] provides a bounded-memory alternative.
///
/// Sorting is an explicit `&mut` operation: call [`QuantileDigest::seal`]
/// after the last `record` and before the first `quantile` read. The dirty
/// flag amortizes away for monotone streams (recording in non-decreasing
/// order keeps the digest sealed), and [`FromIterator`] seals on collect, so
/// the common paths never pay a sort. Reading an unsealed digest panics
/// rather than silently sorting a temporary copy.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::QuantileDigest;
/// let mut d = QuantileDigest::new();
/// for i in 1..=100 {
///     d.record(i as f64);
/// }
/// d.seal();
/// assert_eq!(d.quantile(0.5), Some(50.5));
/// assert_eq!(d.min(), Some(1.0));
/// assert_eq!(d.max(), Some(100.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileDigest {
    samples: Vec<f64>,
    /// Whether `samples` is known to be in non-decreasing order. Skipped by
    /// serde: a deserialized digest conservatively re-seals before reads.
    #[serde(skip)]
    sorted: bool,
    sum: f64,
}

impl Default for QuantileDigest {
    fn default() -> Self {
        QuantileDigest::new()
    }
}

impl QuantileDigest {
    /// Creates an empty digest.
    pub fn new() -> Self {
        QuantileDigest {
            samples: Vec::new(),
            sorted: true,
            sum: 0.0,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        if self.sorted {
            if let Some(&last) = self.samples.last() {
                if value < last {
                    self.sorted = false;
                }
            }
        }
        self.samples.push(value);
        self.sum += value;
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Sorts the backing storage so `quantile` reads are valid. A no-op when
    /// the digest is already sorted (monotone record streams, fresh
    /// collects). Called by the report builders before summarizing.
    pub fn seal(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in digest"));
            self.sorted = true;
        }
    }

    /// Whether the digest is sealed (reads allowed).
    pub fn is_sealed(&self) -> bool {
        self.sorted
    }

    /// Returns the `q`-quantile (0 ≤ q ≤ 1) with linear interpolation, or
    /// `None` if the digest is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`, or if samples were recorded out of
    /// order and the digest was not [sealed](Self::seal) since.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        assert!(
            self.sorted,
            "quantile read on an unsealed digest: call seal() after recording"
        );
        let sorted = &self.samples;
        let n = sorted.len();
        if n == 1 {
            return Some(sorted[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Immutable view of the raw samples (sorted iff sealed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another digest into this one. Stays sealed when simple
    /// concatenation preserves order; otherwise [`seal`](Self::seal) again
    /// before reading quantiles.
    pub fn merge(&mut self, other: &QuantileDigest) {
        let joined_in_order = match (self.samples.last(), other.samples.first()) {
            (Some(&a), Some(&b)) => self.sorted && other.sorted && a <= b,
            _ => self.sorted && other.sorted,
        };
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = joined_in_order;
    }
}

impl FromIterator<f64> for QuantileDigest {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut d = QuantileDigest::new();
        for x in iter {
            d.record(x);
        }
        d.seal();
        d
    }
}

impl Extend<f64> for QuantileDigest {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// How a metrics collector aggregates latency distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QuantileMode {
    /// Store every sample in a [`QuantileDigest`] (the default): quantiles
    /// are exact and reports are bit-reproducible, at O(samples) memory.
    #[default]
    Exact,
    /// Stream samples through P² marker sketches ([`StreamingSummary`]):
    /// O(1) memory per distribution, approximate mid-quantiles, exact
    /// count/sum/min/max. For very long runs (per-token TBT streams).
    Sketch,
    /// Fold samples into mergeable t-digests ([`crate::mergeable::TDigest`]):
    /// bounded memory, approximate mid-quantiles, exact
    /// count/sum/min/max — and collectors can be *merged*, so the sharded
    /// simulator aggregates metrics inside the shards and folds the partial
    /// collectors at drain. Reports are invariant under merge order (any
    /// shard count yields identical bytes) but are not bit-comparable with
    /// the other two modes.
    Mergeable,
}

/// A single-quantile P² estimator (Jain & Chlamtac, 1985): approximates one
/// quantile of a stream with five markers and no stored samples.
///
/// The five marker heights track the minimum, the target quantile, the
/// midpoints on either side, and the maximum; marker positions are nudged
/// toward their ideal locations with a piecewise-parabolic (P²) height
/// update on every observation.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    count: u64,
    /// Marker heights; doubles as the initial observation buffer while
    /// `count < 5`.
    q: [f64; 5],
    /// Actual marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P² quantile must be in (0, 1): {p}");
        P2Quantile {
            p,
            count: 0,
            q: [0.0; 5],
            n: [0.0; 5],
            np: [0.0; 5],
        }
    }

    /// The tracked quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        if self.count < 5 {
            self.q[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                self.n = [1.0, 2.0, 3.0, 4.0, 5.0];
                let p = self.p;
                self.np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0];
            }
            return;
        }
        // Locate the cell k with q[k] <= value < q[k+1], clamping the ends.
        let k = if value < self.q[0] {
            self.q[0] = value;
            0
        } else if value >= self.q[4] {
            self.q[4] = value.max(self.q[4]);
            3
        } else {
            (0..4)
                .rev()
                .find(|&i| self.q[i] <= value)
                .expect("value within [q0, q4)")
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let p = self.p;
        let dnp = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0];
        for (np, d) in self.np.iter_mut().zip(dnp) {
            *np += d;
        }
        // Nudge interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right_gap = self.n[i + 1] - self.n[i];
            let left_gap = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    // Linear fallback toward the neighbor in direction d.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += d;
            }
        }
        self.count += 1;
    }

    /// The current quantile estimate, or `None` if empty. Exact while fewer
    /// than five observations have been seen.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut head = [0.0; 5];
            let n = self.count as usize;
            head[..n].copy_from_slice(&self.q[..n]);
            let head = &mut head[..n];
            head.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let pos = self.p * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            return Some(head[lo] * (1.0 - frac) + head[hi] * frac);
        }
        Some(self.q[2])
    }
}

/// The report quantiles a [`StreamingSummary`] tracks.
pub const SUMMARY_QUANTILES: [f64; 4] = [0.5, 0.9, 0.95, 0.99];

/// Bounded-memory counterpart of [`QuantileDigest`]: exact count, sum, min
/// and max, plus one [`P2Quantile`] marker sketch per report quantile
/// (p50/p90/p95/p99). Memory is O(1) regardless of stream length.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::StreamingSummary;
/// let mut s = StreamingSummary::new();
/// for i in 1..=1000 {
///     s.record(i as f64);
/// }
/// assert_eq!(s.len(), 1000);
/// assert_eq!(s.max(), Some(1000.0));
/// let p50 = s.quantile(0.5).unwrap();
/// assert!((p50 - 500.0).abs() < 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSummary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    sketches: [P2Quantile; 4],
}

impl Default for StreamingSummary {
    fn default() -> Self {
        StreamingSummary::new()
    }
}

impl StreamingSummary {
    /// Creates an empty summary tracking [`SUMMARY_QUANTILES`].
    pub fn new() -> Self {
        StreamingSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sketches: SUMMARY_QUANTILES.map(P2Quantile::new),
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN sample");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        for s in &mut self.sketches {
            s.record(value);
        }
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (exact), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest sample (exact).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample (exact).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The estimated `q`-quantile for one of [`SUMMARY_QUANTILES`], or
    /// `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not one of the tracked quantiles.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let idx = SUMMARY_QUANTILES
            .iter()
            .position(|&t| t == q)
            .unwrap_or_else(|| panic!("untracked quantile {q}; see SUMMARY_QUANTILES"));
        self.sketches[idx].estimate()
    }
}

/// A step function of time used for utilization metrics (KV occupancy, busy
/// GPUs, outstanding requests). Values are weighted by how long they persist.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::TimeWeightedSeries;
/// use vidur_core::time::SimTime;
///
/// let mut s = TimeWeightedSeries::new();
/// s.record(SimTime::from_secs_f64(0.0), 0.0);
/// s.record(SimTime::from_secs_f64(1.0), 1.0);
/// s.record(SimTime::from_secs_f64(3.0), 0.0);
/// // value was 0 for 1s and 1 for 2s => mean 2/3
/// let mean = s.time_weighted_mean(SimTime::from_secs_f64(3.0)).unwrap();
/// assert!((mean - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeWeightedSeries {
    /// (time, value) change-points, non-decreasing in time.
    points: Vec<(SimTime, f64)>,
}

impl TimeWeightedSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeWeightedSeries { points: Vec::new() }
    }

    /// Records that the tracked value changed to `value` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous change-point.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "series updates must be in time order");
        }
        self.points.push((time, value));
    }

    /// Number of change-points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no change-points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Latest recorded value.
    pub fn current(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Time-weighted mean of the value from the first change-point to `end`.
    /// Returns `None` if the series is empty or `end` precedes the first
    /// change-point.
    pub fn time_weighted_mean(&self, end: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        if end <= first {
            return None;
        }
        let total = end.duration_since(first).as_secs_f64();
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let (t0, v) = w[0];
            let t1 = w[1].0.min(end);
            if t1 > t0 {
                acc += v * t1.duration_since(t0).as_secs_f64();
            }
            if w[1].0 >= end {
                return Some(acc / total);
            }
        }
        let (t_last, v_last) = *self.points.last()?;
        if end > t_last {
            acc += v_last * end.duration_since(t_last).as_secs_f64();
        }
        Some(acc / total)
    }

    /// Time-weighted mean of the value over the window `[start, end)`.
    /// The integration starts at `max(start, first change-point)`; returns
    /// `None` when that leaves an empty span (series empty, or `end` not
    /// after the first change-point / `start`).
    pub fn window_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        let lo = start.max(first);
        if end <= lo {
            return None;
        }
        let total = end.duration_since(lo).as_secs_f64();
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let t0 = w[0].0.max(lo);
            let t1 = w[1].0.min(end);
            if t1 > t0 {
                acc += w[0].1 * t1.duration_since(t0).as_secs_f64();
            }
            if w[1].0 >= end {
                return Some(acc / total);
            }
        }
        let (t_last, v_last) = *self.points.last()?;
        let t0 = t_last.max(lo);
        if end > t0 {
            acc += v_last * end.duration_since(t0).as_secs_f64();
        }
        Some(acc / total)
    }

    /// Maximum recorded value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }

    /// Immutable view of the change-points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// Used for operator-level runtime distributions and batch-size profiles.
///
/// # Example
///
/// ```
/// use vidur_core::metrics::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "histogram bounds must satisfy lo < hi");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * i as f64
    }
}

/// A running counter pair for utilization ratios such as MFU/MBU:
/// `achieved / peak` aggregated over time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationAccumulator {
    achieved: f64,
    available: f64,
}

impl UtilizationAccumulator {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one interval: `achieved` units of useful work out of `available`
    /// deliverable units.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is negative.
    pub fn add(&mut self, achieved: f64, available: f64) {
        assert!(achieved >= 0.0 && available >= 0.0);
        self.achieved += achieved;
        self.available += available;
    }

    /// Utilization in `[0, 1]`, or `None` if nothing was available.
    pub fn ratio(&self) -> Option<f64> {
        if self.available > 0.0 {
            Some((self.achieved / self.available).min(1.0))
        } else {
            None
        }
    }

    /// Total achieved units.
    pub fn achieved(&self) -> f64 {
        self.achieved
    }

    /// Total available units.
    pub fn available(&self) -> f64 {
        self.available
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn digest_quantiles_exact() {
        let d: QuantileDigest = (1..=5).map(|x| x as f64).collect();
        assert_eq!(d.quantile(0.0), Some(1.0));
        assert_eq!(d.quantile(1.0), Some(5.0));
        assert_eq!(d.median(), Some(3.0));
        assert_eq!(d.quantile(0.25), Some(2.0));
    }

    #[test]
    fn digest_interpolates() {
        let d: QuantileDigest = vec![0.0, 10.0].into_iter().collect();
        assert_eq!(d.quantile(0.5), Some(5.0));
        assert_eq!(d.quantile(0.9), Some(9.0));
    }

    #[test]
    fn digest_empty() {
        let d = QuantileDigest::new();
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.mean(), None);
        assert_eq!(d.std_dev(), None);
    }

    #[test]
    fn digest_stats() {
        let d: QuantileDigest = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(d.mean(), Some(5.0));
        assert_eq!(d.std_dev(), Some(2.0));
        assert_eq!(d.sum(), 40.0);
    }

    #[test]
    fn digest_merge() {
        let mut a: QuantileDigest = vec![1.0, 2.0].into_iter().collect();
        let b: QuantileDigest = vec![3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.median(), Some(2.5));
    }

    #[test]
    fn digest_seal_then_query() {
        let mut d: QuantileDigest = vec![3.0, 1.0, 2.0].into_iter().collect();
        d.seal();
        assert_eq!(d.median(), Some(2.0));
        assert_eq!(d.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn digest_rejects_nan() {
        QuantileDigest::new().record(f64::NAN);
    }

    #[test]
    fn monotone_records_stay_sealed() {
        let mut d = QuantileDigest::new();
        for x in [1.0, 2.0, 2.0, 5.0] {
            d.record(x);
        }
        assert!(d.is_sealed(), "non-decreasing stream needs no sort");
        assert_eq!(d.median(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "unsealed")]
    fn unsealed_digest_read_panics() {
        let mut d = QuantileDigest::new();
        d.record(2.0);
        d.record(1.0);
        let _ = d.quantile(0.5);
    }

    #[test]
    fn merge_tracks_seal_state() {
        let mut a: QuantileDigest = vec![1.0, 2.0].into_iter().collect();
        let b: QuantileDigest = vec![3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert!(a.is_sealed(), "in-order concatenation stays sealed");
        let c: QuantileDigest = vec![0.5].into_iter().collect();
        a.merge(&c);
        assert!(!a.is_sealed());
        a.seal();
        assert_eq!(a.min(), Some(0.5));
        assert_eq!(a.quantile(1.0), Some(4.0));
    }

    #[test]
    fn p2_small_streams_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        for x in [3.0, 1.0, 2.0] {
            p.record(x);
        }
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn p2_converges_on_uniform() {
        let mut p = P2Quantile::new(0.9);
        // Deterministic low-discrepancy stream over [0, 1).
        let mut x = 0.0f64;
        for _ in 0..10_000 {
            x = (x + 0.754_877_666) % 1.0;
            p.record(x);
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.9).abs() < 0.02, "p90 estimate {est}");
    }

    #[test]
    fn streaming_summary_tracks_exact_moments() {
        let mut s = StreamingSummary::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.sum(), 5050.0);
        assert_eq!(s.mean(), Some(50.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
        for q in SUMMARY_QUANTILES {
            let exact = q * 99.0 + 1.0;
            let est = s.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= 5.0,
                "q{q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "untracked quantile")]
    fn streaming_summary_rejects_untracked() {
        let mut s = StreamingSummary::new();
        s.record(1.0);
        let _ = s.quantile(0.42);
    }

    #[test]
    fn streaming_summary_empty() {
        let s = StreamingSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn series_mean_with_tail() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::ZERO, 2.0);
        s.record(SimTime::from_secs_f64(1.0), 4.0);
        // 2.0 for 1s, then 4.0 for 3s => (2 + 12) / 4
        let m = s.time_weighted_mean(SimTime::from_secs_f64(4.0)).unwrap();
        assert!((m - 3.5).abs() < 1e-9);
    }

    #[test]
    fn series_end_before_start() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::from_secs_f64(5.0), 1.0);
        assert_eq!(s.time_weighted_mean(SimTime::from_secs_f64(2.0)), None);
    }

    #[test]
    fn series_end_mid_window() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::ZERO, 1.0);
        s.record(SimTime::from_secs_f64(2.0), 3.0);
        s.record(SimTime::from_secs_f64(10.0), 100.0);
        let m = s.time_weighted_mean(SimTime::from_secs_f64(4.0)).unwrap();
        // 1.0 for 2s + 3.0 for 2s over 4s = 2.0
        assert!((m - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_window_mean() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::from_secs_f64(1.0), 2.0);
        s.record(SimTime::from_secs_f64(3.0), 6.0);
        // Window [2, 5): 2.0 for 1s + 6.0 for 2s over 3s.
        let m = s
            .window_mean(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(5.0))
            .unwrap();
        assert!((m - 14.0 / 3.0).abs() < 1e-9);
        // Window entirely before the first change-point.
        assert_eq!(
            s.window_mean(SimTime::ZERO, SimTime::from_secs_f64(1.0)),
            None
        );
        // Window clipped to start at the first change-point.
        let clipped = s
            .window_mean(SimTime::ZERO, SimTime::from_secs_f64(3.0))
            .unwrap();
        assert!((clipped - 2.0).abs() < 1e-9);
        // Window after the last change-point takes the tail value.
        let tail = s
            .window_mean(SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(11.0))
            .unwrap();
        assert!((tail - 6.0).abs() < 1e-9);
        assert_eq!(
            TimeWeightedSeries::new().window_mean(SimTime::ZERO, SimTime::MAX),
            None
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn series_rejects_backwards_time() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::from_secs_f64(1.0), 0.0);
        s.record(SimTime::ZERO, 0.0);
    }

    #[test]
    fn series_current_and_max() {
        let mut s = TimeWeightedSeries::new();
        s.record(SimTime::ZERO, 1.0);
        s.record(SimTime::from_secs_f64(1.0), 5.0);
        s.record(SimTime::from_secs_f64(2.0), 3.0);
        assert_eq!(s.current(), Some(3.0));
        assert_eq!(s.max_value(), Some(5.0));
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [5.0, 30.0, 55.0, 80.0, -1.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_lo(2), 50.0);
    }

    #[test]
    fn utilization_accumulator() {
        let mut u = UtilizationAccumulator::new();
        assert_eq!(u.ratio(), None);
        u.add(30.0, 100.0);
        u.add(20.0, 100.0);
        assert_eq!(u.ratio(), Some(0.25));
        assert_eq!(u.achieved(), 50.0);
        assert_eq!(u.available(), 200.0);
    }

    proptest! {
        #[test]
        fn quantiles_are_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let d: QuantileDigest = xs.drain(..).collect();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let vals: Vec<f64> = qs.iter().map(|&q| d.quantile(q).unwrap()).collect();
            for w in vals.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
            prop_assert_eq!(d.quantile(0.0).unwrap(), d.min().unwrap());
            prop_assert_eq!(d.quantile(1.0).unwrap(), d.max().unwrap());
        }

        #[test]
        fn sketch_tracks_exact_within_tolerance(
            xs in proptest::collection::vec(0f64..1000.0, 100..1500)
        ) {
            let exact: QuantileDigest = xs.iter().copied().collect();
            let mut sketch = StreamingSummary::new();
            for &x in &xs {
                sketch.record(x);
            }
            // Moments are exact (same accumulation order => same bits).
            prop_assert_eq!(sketch.sum(), exact.sum());
            prop_assert_eq!(sketch.min(), exact.min());
            prop_assert_eq!(sketch.max(), exact.max());
            prop_assert_eq!(sketch.len() as usize, exact.len());
            // Mid-quantiles are approximate: within 20% of the spread.
            let spread = exact.max().unwrap() - exact.min().unwrap();
            for q in SUMMARY_QUANTILES {
                let e = exact.quantile(q).unwrap();
                let s = sketch.quantile(q).unwrap();
                prop_assert!(
                    (e - s).abs() <= 0.2 * spread + 1e-9,
                    "q{}: exact {} sketch {}", q, e, s
                );
            }
        }

        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let d: QuantileDigest = xs.iter().copied().collect();
            let mean = d.mean().unwrap();
            prop_assert!(mean >= d.min().unwrap() - 1e-6);
            prop_assert!(mean <= d.max().unwrap() + 1e-6);
        }

        #[test]
        fn histogram_conserves_count(xs in proptest::collection::vec(-10f64..110.0, 0..256)) {
            let mut h = Histogram::new(0.0, 100.0, 7);
            for &x in &xs {
                h.record(x);
            }
            prop_assert_eq!(h.count() as usize, xs.len());
        }

        #[test]
        fn series_mean_bounded(vals in proptest::collection::vec(0f64..100.0, 1..50)) {
            let mut s = TimeWeightedSeries::new();
            for (i, &v) in vals.iter().enumerate() {
                s.record(SimTime::from_secs_f64(i as f64), v);
            }
            let end = SimTime::from_secs_f64(vals.len() as f64);
            let m = s.time_weighted_mean(end).unwrap();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
