//! Generic discrete-event queue and driver loop.
//!
//! The queue is keyed on `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore pop in insertion (FIFO) order, which makes the
//! whole simulation deterministic — a property the paper's cascading-error
//! analysis (§3) depends on: re-running a configuration must reproduce the
//! exact same batching pattern.
//!
//! Internally the queue is a slab-backed **pairing heap**
//! ([`KeyedPairingHeap`]) rather than a binary heap. Discrete-event
//! workloads push near-future events (wakeups, batch completions) into a
//! large pending set; in a binary heap such pushes sift almost all the way
//! to the root (`O(log n)` comparisons on the hot path), while a pairing
//! heap links them in `O(1)` and defers all comparison work to `pop`.
//! Nodes live in a slab `Vec` with an intrusive free list, so steady-state
//! event churn allocates nothing once the peak queue depth has been
//! reached. The previous binary-heap implementation is retained as
//! [`BaselineQueue`] — it is the differential oracle for the pairing heap's
//! ordering and the reference side of the event-loop microbench.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

const NIL: u32 = u32::MAX;

#[derive(Clone)]
struct Node<K, E> {
    /// `Some` while the node is live, `None` while parked on the free list.
    slot: Option<(K, E)>,
    /// First child (live) — children form a singly linked sibling list.
    child: u32,
    /// Next sibling (live) or next free node (parked).
    sibling: u32,
}

/// A slab-backed pairing heap keyed on any `Ord` key.
///
/// `push` is `O(1)`: the new node is linked against the root with a single
/// comparison. `pop` performs the classic two-pass pairing of the root's
/// child list (`O(log n)` amortized) using a scratch buffer owned by the
/// heap, so no allocation happens on either path once the slab and scratch
/// have grown to the workload's steady state. Freed slots are recycled
/// through an intrusive free list threaded over the `sibling` links.
///
/// Ties are broken by the key itself — callers that need FIFO ordering at
/// equal times (as [`EventQueue`] does) include an insertion sequence in the
/// key. The merge uses `<=` so equal keys would still favor the
/// earlier-rooted node, but [`EventQueue`] never produces equal keys.
/// Cloning snapshots the full slab (including parked free-list nodes), so a
/// clone pops the exact same sequence as the original — the sharded
/// simulator's window checkpoints rely on this.
#[derive(Clone)]
pub struct KeyedPairingHeap<K, E> {
    nodes: Vec<Node<K, E>>,
    root: u32,
    free: u32,
    len: usize,
    /// Reused by `pop` for the first pairing pass.
    scratch: Vec<u32>,
}

impl<K: Ord, E> KeyedPairingHeap<K, E> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        KeyedPairingHeap {
            nodes: Vec::new(),
            root: NIL,
            free: NIL,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the minimum key without removing it.
    pub fn peek(&self) -> Option<&K> {
        if self.root == NIL {
            return None;
        }
        self.nodes[self.root as usize].slot.as_ref().map(|(k, _)| k)
    }

    /// Inserts an entry. `O(1)`: one slab write plus one key comparison.
    pub fn push(&mut self, key: K, payload: E) {
        let idx = if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.sibling;
            node.slot = Some((key, payload));
            node.child = NIL;
            node.sibling = NIL;
            idx
        } else {
            assert!(self.nodes.len() < NIL as usize, "event heap slab overflow");
            self.nodes.push(Node {
                slot: Some((key, payload)),
                child: NIL,
                sibling: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.root = if self.root == NIL {
            idx
        } else {
            self.merge(self.root, idx)
        };
        self.len += 1;
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(K, E)> {
        if self.root == NIL {
            return None;
        }
        let popped = self.root;
        let node = &mut self.nodes[popped as usize];
        let (key, payload) = node.slot.take().expect("live root");
        let mut child = node.child;
        // Park the popped node on the free list.
        node.sibling = self.free;
        self.free = popped;

        // Two-pass pairing of the former root's children: merge adjacent
        // pairs left to right, then fold the pairs right to left.
        self.scratch.clear();
        while child != NIL {
            let a = child;
            let a_next = self.nodes[a as usize].sibling;
            if a_next == NIL {
                self.scratch.push(a);
                break;
            }
            let b = a_next;
            child = self.nodes[b as usize].sibling;
            self.nodes[a as usize].sibling = NIL;
            self.nodes[b as usize].sibling = NIL;
            let merged = self.merge(a, b);
            self.scratch.push(merged);
        }
        let mut root = NIL;
        while let Some(sub) = self.scratch.pop() {
            root = if root == NIL {
                sub
            } else {
                self.merge(sub, root)
            };
        }
        self.root = root;
        self.len -= 1;
        Some((key, payload))
    }

    /// Drops all entries and recycles every slot.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.root = NIL;
        self.free = NIL;
        self.len = 0;
    }

    /// Links two heap roots, returning the new root. The loser becomes the
    /// winner's first child. `<=` keeps the earlier-rooted node on top at
    /// equal keys.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        let key_a = self.nodes[a as usize].slot.as_ref().map(|(k, _)| k);
        let key_b = self.nodes[b as usize].slot.as_ref().map(|(k, _)| k);
        debug_assert!(key_a.is_some() && key_b.is_some(), "merge of freed node");
        let (winner, loser) = if key_a <= key_b { (a, b) } else { (b, a) };
        let first = self.nodes[winner as usize].child;
        self.nodes[loser as usize].sibling = first;
        self.nodes[winner as usize].child = loser;
        winner
    }
}

impl<K: Ord, E> Default for KeyedPairingHeap<K, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, E> fmt::Debug for KeyedPairingHeap<K, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyedPairingHeap")
            .field("len", &self.len)
            .field("slab", &self.nodes.len())
            .finish()
    }
}

/// Minimal scheduling interface shared by [`EventQueue`] and the sharded
/// per-replica queues, so the engine's hot path can push follow-up events
/// into either without knowing which one is driving it.
pub trait EventPush<E> {
    /// Schedules `payload` to fire at `time`.
    fn push(&mut self, time: SimTime, payload: E);
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use vidur_core::event::EventQueue;
/// use vidur_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "late");
/// q.push(SimTime::from_nanos(5), "early");
/// q.push(SimTime::from_nanos(5), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: KeyedPairingHeap<(SimTime, u64), E>,
    seq: u64,
    popped: u64,
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("scheduled", &self.seq)
            .field("processed", &self.popped)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: KeyedPairingHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.heap.push((time, self.seq), payload);
        self.seq += 1;
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ((time, _), payload) = self.heap.pop()?;
        self.popped += 1;
        Some((time, payload))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|&(time, _)| time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Total number of events processed (popped).
    pub fn processed_count(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> EventPush<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        EventQueue::push(self, time, payload)
    }
}

/// An entry in the baseline binary heap. Ordered so the *earliest* time pops
/// first and ties break in insertion order.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so smallest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the differential
/// oracle for [`EventQueue`]'s pairing heap and as the reference side of the
/// event-loop microbench. Same `(time, seq)` ordering contract.
pub struct BaselineQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for BaselineQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for BaselineQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaselineQueue")
            .field("len", &self.heap.len())
            .finish()
    }
}

impl<E> BaselineQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BaselineQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        Some((entry.time, entry.payload))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A simulation driven by an [`EventQueue`].
///
/// Implementors hold all mutable world state; [`run`] pops events in time
/// order and dispatches them to [`Simulation::handle`], which may schedule
/// further events. The driver enforces the no-time-travel invariant: handlers
/// must not schedule events in the past.
pub trait Simulation {
    /// The event payload type.
    type Event;

    /// Handles one event at simulated time `now`, scheduling any follow-up
    /// events on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Returns `true` when the simulation should stop even though events
    /// remain (e.g. all tracked requests completed). Default: run to empty.
    fn is_done(&self) -> bool {
        false
    }
}

/// Runs `sim` until the queue drains, `sim.is_done()` reports completion, or
/// `max_events` events have been processed.
///
/// Returns the timestamp of the last processed event (or `SimTime::ZERO` when
/// no event fired) and the number of events processed.
///
/// # Panics
///
/// Panics if a handler scheduled an event earlier than the event being
/// handled (time travel), which would indicate a simulator bug.
pub fn run<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    max_events: u64,
) -> (SimTime, u64) {
    let mut now = SimTime::ZERO;
    let mut processed = 0u64;
    while processed < max_events {
        if sim.is_done() {
            break;
        }
        let Some((time, event)) = queue.pop() else {
            break;
        };
        assert!(
            time >= now,
            "event queue produced out-of-order event: {time} < {now}"
        );
        now = time;
        sim.handle(now, event, queue);
        processed += 1;
    }
    (now, processed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_among_ties_survives_interleaved_pops() {
        // Tie-break order must hold even when pops interleave with pushes,
        // which exercises sequence-number ordering across heap reshuffles.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(9);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(t, 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn fifo_among_ties_with_mixed_times() {
        // Ties at one timestamp stay FIFO even with other timestamps
        // interleaved between the pushes.
        let mut q = EventQueue::new();
        let tie = SimTime::from_nanos(50);
        q.push(tie, "a");
        q.push(SimTime::from_nanos(10), "early");
        q.push(tie, "b");
        q.push(SimTime::from_nanos(90), "late");
        q.push(tie, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["early", "a", "b", "c", "late"]);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.processed_count(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slab_recycles_slots() {
        // Steady-state churn must not grow the slab: pop frees a slot, the
        // next push reuses it.
        let mut q: KeyedPairingHeap<u64, u64> = KeyedPairingHeap::new();
        for i in 0..64 {
            q.push(i, i);
        }
        let slab_high_water = q.nodes.len();
        for i in 64..4096 {
            let (k, v) = q.pop().unwrap();
            assert_eq!(k, v);
            q.push(i, i);
        }
        assert_eq!(q.nodes.len(), slab_high_water);
        assert_eq!(q.len(), 64);
    }

    /// A toy simulation: a counter that re-schedules itself `n` times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + SimDuration::from_millis(10), ());
            }
        }
    }

    #[test]
    fn driver_runs_chain() {
        let mut sim = Ticker {
            remaining: 4,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let (end, processed) = run(&mut sim, &mut q, u64::MAX);
        assert_eq!(processed, 5);
        assert_eq!(end, SimTime::from_secs_f64(0.04));
        assert_eq!(sim.fired_at.len(), 5);
        assert!(sim.fired_at.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn driver_respects_max_events() {
        let mut sim = Ticker {
            remaining: u32::MAX,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let (_, processed) = run(&mut sim, &mut q, 17);
        assert_eq!(processed, 17);
    }

    struct DoneAfter(u32);
    impl Simulation for DoneAfter {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
            self.0 = self.0.saturating_sub(1);
            q.push(now + SimDuration::from_nanos(1), ());
        }
        fn is_done(&self) -> bool {
            self.0 == 0
        }
    }

    #[test]
    fn driver_stops_when_done() {
        let mut sim = DoneAfter(3);
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let (_, processed) = run(&mut sim, &mut q, u64::MAX);
        assert_eq!(processed, 3);
    }

    proptest! {
        #[test]
        fn always_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn tie_break_is_fifo(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_nanos(42);
            for i in 0..n {
                q.push(t, i);
            }
            for i in 0..n {
                prop_assert_eq!(q.pop().unwrap().1, i);
            }
        }

        #[test]
        fn pop_count_matches_push_count(times in proptest::collection::vec(0u64..1000, 0..64)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_nanos(t), ());
            }
            let mut n = 0;
            while q.pop().is_some() { n += 1; }
            prop_assert_eq!(n, times.len());
        }

        /// Differential oracle: interleaved push/pop programs produce the
        /// exact same event stream from the pairing heap as from the
        /// baseline binary heap. Times are drawn from a tiny range so
        /// equal-timestamp ties are dense.
        #[test]
        fn matches_baseline_queue(
            ops in proptest::collection::vec((0u64..16, proptest::bool::ANY), 1..300)
        ) {
            let mut fast = EventQueue::new();
            let mut base = BaselineQueue::new();
            let mut tag = 0u64;
            for &(t, is_pop) in &ops {
                if is_pop {
                    prop_assert_eq!(fast.pop(), base.pop());
                } else {
                    fast.push(SimTime::from_nanos(t), tag);
                    base.push(SimTime::from_nanos(t), tag);
                    tag += 1;
                }
            }
            while let Some(got) = fast.pop() {
                prop_assert_eq!(Some(got), base.pop());
            }
            prop_assert!(base.pop().is_none());
        }
    }
}
