//! Generic discrete-event queue and driver loop.
//!
//! The queue is a binary heap keyed on `(time, sequence)` where `sequence`
//! is a monotonically increasing insertion counter. Two events scheduled for
//! the same instant therefore pop in insertion (FIFO) order, which makes the
//! whole simulation deterministic — a property the paper's cascading-error
//! analysis (§3) depends on: re-running a configuration must reproduce the
//! exact same batching pattern.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// An entry in the event heap. Ordered so the *earliest* time pops first and
/// ties break in insertion order.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so smallest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use vidur_core::event::EventQueue;
/// use vidur_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "late");
/// q.push(SimTime::from_nanos(5), "early");
/// q.push(SimTime::from_nanos(5), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("scheduled", &self.seq)
            .field("processed", &self.popped)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Total number of events processed (popped).
    pub fn processed_count(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A simulation driven by an [`EventQueue`].
///
/// Implementors hold all mutable world state; [`run`] pops events in time
/// order and dispatches them to [`Simulation::handle`], which may schedule
/// further events. The driver enforces the no-time-travel invariant: handlers
/// must not schedule events in the past.
pub trait Simulation {
    /// The event payload type.
    type Event;

    /// Handles one event at simulated time `now`, scheduling any follow-up
    /// events on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Returns `true` when the simulation should stop even though events
    /// remain (e.g. all tracked requests completed). Default: run to empty.
    fn is_done(&self) -> bool {
        false
    }
}

/// Runs `sim` until the queue drains, `sim.is_done()` reports completion, or
/// `max_events` events have been processed.
///
/// Returns the timestamp of the last processed event (or `SimTime::ZERO` when
/// no event fired) and the number of events processed.
///
/// # Panics
///
/// Panics if a handler scheduled an event earlier than the event being
/// handled (time travel), which would indicate a simulator bug.
pub fn run<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    max_events: u64,
) -> (SimTime, u64) {
    let mut now = SimTime::ZERO;
    let mut processed = 0u64;
    while processed < max_events {
        if sim.is_done() {
            break;
        }
        let Some((time, event)) = queue.pop() else {
            break;
        };
        assert!(
            time >= now,
            "event queue produced out-of-order event: {time} < {now}"
        );
        now = time;
        sim.handle(now, event, queue);
        processed += 1;
    }
    (now, processed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_among_ties_survives_interleaved_pops() {
        // Tie-break order must hold even when pops interleave with pushes,
        // which exercises sequence-number ordering across heap reshuffles.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(9);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(t, 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn fifo_among_ties_with_mixed_times() {
        // Ties at one timestamp stay FIFO even with other timestamps
        // interleaved between the pushes.
        let mut q = EventQueue::new();
        let tie = SimTime::from_nanos(50);
        q.push(tie, "a");
        q.push(SimTime::from_nanos(10), "early");
        q.push(tie, "b");
        q.push(SimTime::from_nanos(90), "late");
        q.push(tie, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["early", "a", "b", "c", "late"]);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.processed_count(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
    }

    /// A toy simulation: a counter that re-schedules itself `n` times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + SimDuration::from_millis(10), ());
            }
        }
    }

    #[test]
    fn driver_runs_chain() {
        let mut sim = Ticker {
            remaining: 4,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let (end, processed) = run(&mut sim, &mut q, u64::MAX);
        assert_eq!(processed, 5);
        assert_eq!(end, SimTime::from_secs_f64(0.04));
        assert_eq!(sim.fired_at.len(), 5);
        assert!(sim.fired_at.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn driver_respects_max_events() {
        let mut sim = Ticker {
            remaining: u32::MAX,
            fired_at: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let (_, processed) = run(&mut sim, &mut q, 17);
        assert_eq!(processed, 17);
    }

    struct DoneAfter(u32);
    impl Simulation for DoneAfter {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
            self.0 = self.0.saturating_sub(1);
            q.push(now + SimDuration::from_nanos(1), ());
        }
        fn is_done(&self) -> bool {
            self.0 == 0
        }
    }

    #[test]
    fn driver_stops_when_done() {
        let mut sim = DoneAfter(3);
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let (_, processed) = run(&mut sim, &mut q, u64::MAX);
        assert_eq!(processed, 3);
    }

    proptest! {
        #[test]
        fn always_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn tie_break_is_fifo(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_nanos(42);
            for i in 0..n {
                q.push(t, i);
            }
            for i in 0..n {
                prop_assert_eq!(q.pop().unwrap().1, i);
            }
        }

        #[test]
        fn pop_count_matches_push_count(times in proptest::collection::vec(0u64..1000, 0..64)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_nanos(t), ());
            }
            let mut n = 0;
            while q.pop().is_some() { n += 1; }
            prop_assert_eq!(n, times.len());
        }
    }
}
