//! Mergeable summary sketches: a deterministic t-digest and a HyperLogLog.
//!
//! The serial-replay metrics path ([`crate::metrics::QuantileDigest`] /
//! [`crate::metrics::P2Quantile`]) either stores every sample or sketches
//! them in an order-dependent way — neither state can be *merged* across
//! threads without replaying the raw stream. This module provides the two
//! mergeable summaries the sharded simulator folds inside its shards:
//!
//! - [`TDigest`]: bounded-memory quantile sketch (Dunning's t-digest with
//!   the k1 arcsine scale function). The twist relative to textbook
//!   implementations is *determinism*: [`TDigest::merge`] only concatenates
//!   centroid lists (no compression), and [`TDigest::seal`] performs one
//!   canonical compression over the sorted centroid multiset. The sealed
//!   state is therefore a pure function of the *multiset* of centroids —
//!   merging per-shard digests in any permutation yields bit-identical
//!   sealed state and bit-identical quantile reads.
//! - [`HyperLogLog`]: distinct-count sketch whose merge (element-wise
//!   register max) is commutative, associative, and idempotent by
//!   construction.
//!
//! Neither sketch keeps a running `f64` sum: float addition is
//! non-associative, so an internal sum would break merge-order invariance.
//! Callers that need exact sums keep them alongside, in per-writer slots.

/// One t-digest cluster: a weighted point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Centroid {
    /// Weighted mean of the samples folded into this cluster.
    pub mean: f64,
    /// Number of samples folded into this cluster.
    pub weight: u64,
}

/// Default compression parameter δ. With the k1 scale the sealed digest
/// holds at most ~δ/2 centroids; δ = 200 keeps mid-quantile rank error
/// well under 1% in practice.
pub const DEFAULT_COMPRESSION: f64 = 200.0;

/// How many centroids may accumulate (relative to δ) before `record`
/// triggers a local compression. Larger factors amortize the sort better;
/// the trigger is a deterministic function of the stream, so a given
/// sample sequence always produces the same centroid list.
const BUFFER_FACTOR: usize = 8;

/// A deterministic merging t-digest (Dunning's sketch, k1 scale function).
///
/// Contract:
/// - `record` appends a weight-1 centroid and compresses locally when the
///   buffer exceeds `BUFFER_FACTOR × δ` entries. The trigger depends only
///   on the sample sequence, so identical streams yield identical state.
/// - `merge` concatenates the other digest's centroids **without**
///   compressing (compression here would make the result depend on merge
///   order).
/// - `seal` sorts the centroid list by `(mean, weight)` and runs one
///   greedy k1-scale compression pass. Because the sort canonicalizes
///   order, sealed state — and every quantile read after it — is a pure
///   function of the centroid multiset, not of the merge permutation.
/// - `quantile`/`mean` read only sealed digests (panic otherwise), exactly
///   like [`crate::metrics::QuantileDigest`].
///
/// `count`, `min`, and `max` are tracked exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    count: u64,
    min: f64,
    max: f64,
    sealed: bool,
}

impl Default for TDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TDigest {
    /// An empty digest with the default compression δ.
    pub fn new() -> Self {
        Self::with_compression(DEFAULT_COMPRESSION)
    }

    /// An empty digest with an explicit compression parameter δ ≥ 20.
    pub fn with_compression(compression: f64) -> Self {
        assert!(
            compression >= 20.0,
            "t-digest compression must be at least 20"
        );
        Self {
            compression,
            centroids: Vec::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sealed: false,
        }
    }

    /// Fold one sample into the digest.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.centroids.push(Centroid {
            mean: value,
            weight: 1,
        });
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sealed = false;
        if self.centroids.len() >= BUFFER_FACTOR * self.compression as usize {
            self.compress();
        }
    }

    /// Fold another digest into this one. Centroids are concatenated, not
    /// compressed: compressing here would make the result depend on the
    /// merge order. Call [`TDigest::seal`] once all merges are done.
    ///
    /// Panics if the two digests use different compression parameters.
    pub fn merge(&mut self, other: &TDigest) {
        assert!(
            self.compression == other.compression,
            "cannot merge t-digests with different compression ({} vs {})",
            self.compression,
            other.compression
        );
        if other.count == 0 {
            return;
        }
        self.centroids.extend_from_slice(&other.centroids);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sealed = false;
    }

    /// Canonically compress the digest: sort centroids by `(mean, weight)`
    /// and run one greedy k1-scale merge pass. Idempotent: sealing a sealed
    /// digest is a no-op, so repeated reads stay stable.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.compress();
        self.sealed = true;
    }

    /// Number of samples recorded (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (exact). `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (exact). `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of centroids currently held (sealed: at most ~δ/2).
    pub fn num_centroids(&self) -> usize {
        self.centroids.len()
    }

    /// The sealed centroid list, for inspection/tests.
    ///
    /// Panics when unsealed — the raw buffer is an implementation detail.
    pub fn centroids(&self) -> &[Centroid] {
        assert!(self.sealed, "centroids(): seal() the digest first");
        &self.centroids
    }

    /// Approximate mean, computed from the sealed centroid list so the
    /// result is canonical under merge order. Exact sums belong next to the
    /// digest, in per-writer slots. `None` when empty.
    ///
    /// Panics when unsealed.
    pub fn mean(&self) -> Option<f64> {
        assert!(self.sealed, "mean(): seal() the digest first");
        if self.count == 0 {
            return None;
        }
        let mut acc = 0.0;
        for c in &self.centroids {
            acc += c.mean * c.weight as f64;
        }
        Some(acc / self.count as f64)
    }

    /// Approximate q-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// over cumulative centroid weights, clamped to the exact min/max.
    /// `None` when empty.
    ///
    /// Panics when unsealed or when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(self.sealed, "quantile(): seal() the digest first");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let total = self.count as f64;
        let rank = q * total;
        // Each centroid "sits" at the midpoint of its cumulative weight
        // span; interpolate piecewise-linearly between (0, min),
        // (mid_i, mean_i)…, (total, max).
        let mut cum = 0.0;
        let mut prev_pos = 0.0;
        let mut prev_val = self.min;
        for c in &self.centroids {
            let w = c.weight as f64;
            let center = cum + w / 2.0;
            if rank < center {
                let span = center - prev_pos;
                let t = if span > 0.0 {
                    (rank - prev_pos) / span
                } else {
                    0.0
                };
                return Some((prev_val + t * (c.mean - prev_val)).clamp(self.min, self.max));
            }
            cum += w;
            prev_pos = center;
            prev_val = c.mean;
        }
        let span = total - prev_pos;
        let t = if span > 0.0 {
            (rank - prev_pos) / span
        } else {
            1.0
        };
        Some((prev_val + t * (self.max - prev_val)).clamp(self.min, self.max))
    }

    /// k1 scale function: k(q) = δ/(2π) · asin(2q − 1). Cluster sizes obey
    /// k(q_right) − k(q_left) ≤ 1, which concentrates small clusters at the
    /// tails where quantile accuracy matters most.
    fn k_scale(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).asin()
    }

    /// Sort centroids by `(mean, weight)` and greedily merge neighbours
    /// while the combined cluster stays within one k-unit. The sort makes
    /// the pass a pure function of the centroid multiset.
    fn compress(&mut self) {
        if self.centroids.len() <= 1 {
            return;
        }
        self.centroids.sort_unstable_by(|a, b| {
            a.mean
                .partial_cmp(&b.mean)
                .expect("centroid means are never NaN")
                .then(a.weight.cmp(&b.weight))
        });
        let total = self.count as f64;
        let mut out: Vec<Centroid> = Vec::with_capacity(self.compression as usize);
        let mut cur = self.centroids[0];
        let mut emitted: u64 = 0;
        for &c in &self.centroids[1..] {
            let proposed = cur.weight + c.weight;
            let q_left = emitted as f64 / total;
            let q_right = (emitted + proposed) as f64 / total;
            if self.k_scale(q_right) - self.k_scale(q_left) <= 1.0 {
                // Weighted-mean update over the sorted sequence is
                // deterministic given the multiset.
                cur.mean += (c.mean - cur.mean) * (c.weight as f64 / proposed as f64);
                cur.weight = proposed;
            } else {
                emitted += cur.weight;
                out.push(cur);
                cur = c;
            }
        }
        out.push(cur);
        self.centroids = out;
    }
}

/// SplitMix64: a cheap, well-mixed 64-bit hash (public-domain constants).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Register-count exponent: 2^10 = 1024 registers ≈ 3.25% standard error.
const HLL_PRECISION: u32 = 10;

/// A HyperLogLog distinct-count sketch over `u64` keys.
///
/// 1024 one-byte registers (~3.25% standard error). Keys are mixed through
/// SplitMix64, so dense small integers (tenant ids, prefix hashes) spread
/// uniformly. `merge` takes the element-wise register max, which is
/// commutative, associative, and idempotent — merging per-shard sketches
/// in any order yields bit-identical registers.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperLogLog {
    registers: Vec<u8>,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperLogLog {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            registers: vec![0; 1 << HLL_PRECISION],
        }
    }

    /// Fold one key into the sketch.
    pub fn insert(&mut self, key: u64) {
        let h = splitmix64(key);
        let idx = (h >> (64 - HLL_PRECISION)) as usize;
        // Rank = position of the first set bit in the remaining stream.
        let rest = h << HLL_PRECISION;
        let rank = (rest.leading_zeros() + 1).min(64 - HLL_PRECISION + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Fold another sketch into this one (element-wise register max).
    pub fn merge(&mut self, other: &HyperLogLog) {
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(*o);
        }
    }

    /// Whether any key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Estimated number of distinct keys inserted, with the standard
    /// linear-counting correction for small cardinalities. Deterministic:
    /// the registers determine the estimate bit for bit.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut denom = 0.0;
        let mut zeros = 0u32;
        for &r in &self.registers {
            denom += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / denom;
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting dominates in the small-cardinality regime.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use proptest::prelude::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Rank error of an estimate: |#(samples ≤ est)/N − q|.
    fn rank_error(sorted: &[f64], est: f64, q: f64) -> f64 {
        let below = sorted.partition_point(|&v| v <= est);
        (below as f64 / sorted.len() as f64 - q).abs()
    }

    #[test]
    fn empty_digest_reads_none() {
        let mut d = TDigest::new();
        d.seal();
        assert!(d.is_empty());
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.mean(), None);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    #[should_panic(expected = "seal() the digest first")]
    fn unsealed_quantile_panics() {
        let mut d = TDigest::new();
        d.record(1.0);
        let _ = d.quantile(0.5);
    }

    #[test]
    fn small_digest_is_exact_at_extremes() {
        let mut d = TDigest::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            d.record(v);
        }
        d.seal();
        assert_eq!(d.count(), 5);
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(5.0));
        assert_eq!(d.quantile(0.0), Some(1.0));
        assert_eq!(d.quantile(1.0), Some(5.0));
        let p50 = d.quantile(0.5).unwrap();
        assert!((2.0..=4.0).contains(&p50), "p50 {p50} out of range");
    }

    #[test]
    fn constant_distribution_is_exact() {
        let mut d = TDigest::new();
        for _ in 0..10_000 {
            d.record(7.25);
        }
        d.seal();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(d.quantile(q), Some(7.25), "q={q}");
        }
        assert_eq!(d.mean(), Some(7.25));
    }

    /// Adversarial shapes: rank error must stay within the documented
    /// bound at the summary quantiles.
    #[test]
    fn adversarial_distributions_within_rank_error() {
        let n = 20_000usize;
        let mut rng = SimRng::new(17);
        let shapes: Vec<(&str, Vec<f64>)> = vec![
            ("monotone ramp", (0..n).map(|i| i as f64).collect()),
            ("reverse ramp", (0..n).map(|i| (n - i) as f64).collect()),
            (
                "bimodal",
                (0..n)
                    .map(|i| {
                        if i % 2 == 0 {
                            1.0 + rng.next_f64()
                        } else {
                            1_000.0 + rng.next_f64()
                        }
                    })
                    .collect(),
            ),
            (
                "heavy tail",
                (0..n)
                    .map(|_| (-(1.0 - rng.next_f64()).ln()).powi(3))
                    .collect(),
            ),
        ];
        for (name, samples) in shapes {
            let mut d = TDigest::new();
            for &v in &samples {
                d.record(v);
            }
            d.seal();
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.5, 0.9, 0.95, 0.99] {
                let est = d.quantile(q).unwrap();
                let err = rank_error(&sorted, est, q);
                assert!(
                    err <= 0.02,
                    "{name}: rank error {err:.4} at q={q} (est {est}, exact {})",
                    exact_quantile(&sorted, q)
                );
            }
            assert!(
                d.num_centroids() <= 2 * DEFAULT_COMPRESSION as usize,
                "{name}: {} centroids after seal",
                d.num_centroids()
            );
        }
    }

    #[test]
    fn merge_preserves_exact_count_min_max() {
        let mut a = TDigest::new();
        let mut b = TDigest::new();
        let mut rng = SimRng::new(3);
        for _ in 0..5_000 {
            a.record(rng.next_f64() * 100.0);
        }
        for _ in 0..3_000 {
            b.record(-50.0 + rng.next_f64() * 25.0);
        }
        let (amin, amax) = (a.min().unwrap(), a.max().unwrap());
        let (bmin, bmax) = (b.min().unwrap(), b.max().unwrap());
        a.merge(&b);
        a.seal();
        assert_eq!(a.count(), 8_000);
        assert_eq!(a.min(), Some(amin.min(bmin)));
        assert_eq!(a.max(), Some(amax.max(bmax)));
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut a = TDigest::new();
        for i in 0..1_000 {
            a.record(i as f64);
        }
        let mut sealed = a.clone();
        sealed.seal();
        let empty = TDigest::new();
        a.merge(&empty);
        a.seal();
        assert_eq!(a, sealed);

        let mut e = TDigest::new();
        e.merge(&sealed);
        e.seal();
        assert_eq!(e.count(), sealed.count());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(
                e.quantile(q).unwrap().to_bits(),
                sealed.quantile(q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn seal_is_idempotent() {
        let mut d = TDigest::new();
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            d.record(rng.next_f64());
        }
        d.seal();
        let snapshot = d.clone();
        d.seal();
        assert_eq!(d, snapshot);
    }

    proptest! {
        /// The headline invariant: merging per-shard digests in any
        /// permutation produces bit-identical sealed state.
        #[test]
        fn merge_is_permutation_invariant(
            seed in 0u64..1_000,
            shards in 2usize..6,
            n in 1usize..4_000,
        ) {
            let mut rng = SimRng::new(seed);
            let mut parts: Vec<TDigest> = (0..shards).map(|_| TDigest::new()).collect();
            for i in 0..n {
                parts[i % shards].record(rng.next_f64() * 1_000.0);
            }
            // Forward merge order.
            let mut fwd = TDigest::new();
            for p in &parts {
                fwd.merge(p);
            }
            fwd.seal();
            // A rotated + reversed order.
            let mut rev = TDigest::new();
            let rot = seed as usize % shards;
            for i in (0..shards).rev() {
                rev.merge(&parts[(i + rot) % shards]);
            }
            rev.seal();
            prop_assert_eq!(&fwd, &rev);
            for q in [0.25, 0.5, 0.9, 0.99] {
                prop_assert_eq!(
                    fwd.quantile(q).unwrap().to_bits(),
                    rev.quantile(q).unwrap().to_bits()
                );
            }
        }

        /// Merged digests stay within rank-error bounds of the pooled
        /// exact distribution.
        #[test]
        fn merged_digest_tracks_exact(seed in 0u64..500, shards in 1usize..5) {
            let n = 6_000usize;
            let mut rng = SimRng::new(seed);
            let samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
            let mut parts: Vec<TDigest> = (0..shards).map(|_| TDigest::new()).collect();
            for (i, &v) in samples.iter().enumerate() {
                parts[i % shards].record(v);
            }
            let mut merged = TDigest::new();
            for p in &parts {
                merged.merge(p);
            }
            merged.seal();
            let mut sorted = samples;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.5, 0.9, 0.99] {
                let err = rank_error(&sorted, merged.quantile(q).unwrap(), q);
                prop_assert!(err <= 0.03, "rank error {} at q={}", err, q);
            }
        }
    }

    #[test]
    fn hll_estimates_within_tolerance() {
        for n in [10u64, 100, 1_000, 10_000, 100_000] {
            let mut h = HyperLogLog::new();
            for k in 0..n {
                h.insert(k);
            }
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(
                rel < 0.11,
                "n={n}: estimate {est:.0} off by {:.1}%",
                rel * 100.0
            );
        }
    }

    #[test]
    fn hll_empty_estimates_zero() {
        let h = HyperLogLog::new();
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn hll_insert_is_idempotent() {
        let mut h = HyperLogLog::new();
        for _ in 0..1_000 {
            h.insert(42);
        }
        let est = h.estimate();
        assert!((0.5..=1.5).contains(&est), "single key estimates {est}");
    }

    proptest! {
        /// Merge is a union: merging disjoint sketches equals inserting
        /// the union, and the operation is commutative and idempotent.
        #[test]
        fn hll_merge_is_union(a_n in 1u64..5_000, b_n in 1u64..5_000) {
            let mut a = HyperLogLog::new();
            let mut b = HyperLogLog::new();
            let mut union = HyperLogLog::new();
            for k in 0..a_n {
                a.insert(k);
                union.insert(k);
            }
            for k in 1_000_000..1_000_000 + b_n {
                b.insert(k);
                union.insert(k);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(&ab, &union);
            let mut twice = ab.clone();
            twice.merge(&ab);
            prop_assert_eq!(&twice, &ab);
        }
    }
}
