//! # Vidur — a large-scale simulation framework for LLM inference
//!
//! A from-scratch Rust reproduction of *"Vidur: A Large-Scale Simulation
//! Framework for LLM Inference"* (MLSys 2024): the event-driven inference
//! simulator, the Vidur-Bench workload suite, and the Vidur-Search
//! deployment-configuration optimizer.
//!
//! This facade crate re-exports the whole workspace. Start with
//! [`prelude`], or see the `examples/` directory:
//!
//! ```
//! use vidur::prelude::*;
//!
//! // Describe a deployment...
//! let config = ClusterConfig::new(
//!     ModelSpec::llama2_7b(),
//!     GpuSku::a100_80g(),
//!     ParallelismConfig::serial(),
//!     1,
//!     SchedulerConfig::new(BatchPolicyKind::Vllm, 32),
//! );
//! // ...a workload...
//! let mut rng = SimRng::new(42);
//! let trace = TraceWorkload::chat_1m().generate(20, &ArrivalProcess::Static, &mut rng);
//! // ...onboard the model and simulate.
//! let est = vidur::simulator::onboard(
//!     &config.model, &config.parallelism, &config.sku, EstimatorKind::default());
//! let report = ClusterSimulator::new(
//!     config, trace, RuntimeSource::Estimator((*est).clone()), 42).run();
//! assert_eq!(report.completed, 20);
//! ```

pub use vidur_core as core;
pub use vidur_estimator as estimator;
pub use vidur_hardware as hardware;
pub use vidur_model as model;
pub use vidur_profiler as profiler;
pub use vidur_scheduler as scheduler;
pub use vidur_search as search;
pub use vidur_simulator as simulator;
pub use vidur_workload as workload;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use vidur_core::rng::SimRng;
    pub use vidur_core::time::{SimDuration, SimTime};
    pub use vidur_estimator::{EstimatorKind, RuntimeEstimator};
    pub use vidur_hardware::{GpuSku, KernelOracle};
    pub use vidur_model::{
        BatchComposition, ExecutionPlan, MemoryPlan, ModelSpec, ParallelismConfig, RequestSlice,
        RuntimePredictor,
    };
    pub use vidur_scheduler::{
        BatchPolicyKind, GlobalPolicyKind, ReplicaHealth, ReplicaLoad, ReplicaScheduler, Request,
        RouteRequest, Router, RouterView, RoutingTier, SchedulerConfig, TenantRouting,
    };
    pub use vidur_search::{
        find_capacity, find_capacity_with_timer, misconfiguration_matrix, pareto_frontier,
        run_search, CapacityParams, ConfigEvaluation, CostLedger, SearchOutcome, SearchSpace,
        SloConstraints,
    };
    pub use vidur_simulator::cluster::RuntimeSource;
    pub use vidur_simulator::{
        onboard, onboard_timer, run_fidelity_pair, Autoscaler, AutoscalerSpec, CacheStats,
        ClusterConfig, ClusterSimulator, DisaggConfig, DisaggSimulator, FaultPlan, FidelityReport,
        FleetObservation, FleetStats, PrefixCacheConfig, PrefixStats, QuantileMode, RunStats,
        ScaleDecision, SimulationReport, SloQueueAutoscaler, StageTimer, TenantReport,
        TenantRoutingStats, TenantSlo, TimeseriesConfig, TimeseriesRow, WarmupModel,
    };
    pub use vidur_workload::faults::{FaultAction, FaultRecord, FaultSchedule};
    pub use vidur_workload::{
        ArrivalProcess, MultiTenantWorkload, TenantPrefixConfig, TenantStream, Trace, TraceError,
        TracePrefix, TraceReader, TraceRequest, TraceWorkload, WorkloadStats, NO_PREFIX,
    };
}
