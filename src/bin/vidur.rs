//! `vidur` — command-line front end for the simulator and search.
//!
//! ```text
//! vidur models                          list built-in model specs
//! vidur workloads                       list Vidur-Bench workloads
//! vidur simulate [options]              simulate one deployment
//! vidur search   [options]              find the best deployment
//! ```
//!
//! Run `vidur <command> --help` for options.

use std::collections::HashMap;
use std::process::ExitCode;
use vidur::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("workloads") => cmd_workloads(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "vidur — LLM inference simulation (MLSys'24 reproduction)\n\n\
         USAGE:\n  vidur models\n  vidur workloads\n  vidur simulate [options]\n  vidur search [options]\n\n\
         SIMULATE OPTIONS:\n\
           --model <name>        model spec (default llama2-7b; see `vidur models`)\n\
           --sku <name>          a100 | h100 (default a100)\n\
           --tp <n> --pp <n>     parallelism degrees (default 1, 1)\n\
           --replicas <n>        replica count (default 1)\n\
           --scheduler <name>    vllm | orca | sarathi | ft | lightllm (default sarathi)\n\
           --chunk <tokens>      Sarathi chunk size (default 512)\n\
           --batch-size <n>      max sequences per batch (default 64)\n\
           --workload <name>     chat-1m | arxiv-4k | bwb-4k (default chat-1m)\n\
           --requests <n>        trace length (default 200)\n\
           --qps <rate>          Poisson arrival rate; 0 = offline (default 1.0)\n\
           --seed <n>            RNG seed (default 42)\n\
           --json                emit the full report as JSON\n\n\
         SEARCH OPTIONS:\n\
           --model, --workload, --requests, --seed as above\n\
           --max-gpus <n>        GPU budget (default 16)\n\
           --full                paper-sized configuration grid"
    );
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        if key == "json" || key == "full" {
            out.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            out.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{key}: {v}")),
    }
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<14} {:>8} {:>7} {:>9} {:>9} {:>6} {:>12}",
        "name", "params", "layers", "dim", "heads", "kv", "KV B/token"
    );
    for m in ModelSpec::all_models() {
        println!(
            "{:<14} {:>7.1}B {:>7} {:>9} {:>9} {:>6} {:>12}",
            m.name,
            m.total_params() / 1e9,
            m.num_layers,
            m.embed_dim,
            m.num_q_heads,
            m.num_kv_heads,
            m.kv_bytes_per_token(),
        );
    }
    ExitCode::SUCCESS
}

fn cmd_workloads() -> ExitCode {
    let mut rng = SimRng::new(1);
    println!("{:<10} statistics (20k sampled requests)", "name");
    for w in TraceWorkload::paper_workloads() {
        let trace = w.generate(20_000, &ArrivalProcess::Static, &mut rng);
        let s = WorkloadStats::compute(&trace);
        println!("{:<10} {s}", w.name);
    }
    ExitCode::SUCCESS
}

fn build_config(flags: &HashMap<String, String>) -> Result<ClusterConfig, String> {
    let model_name: String = get(flags, "model", "llama2-7b".to_string())?;
    let model = ModelSpec::by_name(&model_name).ok_or(format!("unknown model '{model_name}'"))?;
    let sku_name: String = get(flags, "sku", "a100".to_string())?;
    let sku = GpuSku::by_name(&sku_name).ok_or(format!("unknown SKU '{sku_name}'"))?;
    let tp: u32 = get(flags, "tp", 1)?;
    let pp: u32 = get(flags, "pp", 1)?;
    let replicas: usize = get(flags, "replicas", 1)?;
    let chunk: u64 = get(flags, "chunk", 512)?;
    let scheduler_name: String = get(flags, "scheduler", "sarathi".to_string())?;
    let policy = match scheduler_name.as_str() {
        "vllm" => BatchPolicyKind::Vllm,
        "orca" | "orca+" => BatchPolicyKind::OrcaPlus,
        "sarathi" | "sarathi-serve" => BatchPolicyKind::SarathiServe { chunk_size: chunk },
        "ft" | "faster-transformer" => BatchPolicyKind::FasterTransformer,
        "lightllm" => BatchPolicyKind::LightLlm,
        other => return Err(format!("unknown scheduler '{other}'")),
    };
    let batch_size: usize = get(flags, "batch-size", 64)?;
    let par = ParallelismConfig::new(tp, pp);
    par.validate_for(&model).map_err(|e| e.to_string())?;
    let config = ClusterConfig::new(
        model,
        sku,
        par,
        replicas,
        SchedulerConfig::new(policy, batch_size),
    );
    config.memory_plan().map_err(|e| e.to_string())?;
    Ok(config)
}

fn build_trace(flags: &HashMap<String, String>) -> Result<Trace, String> {
    let workload_name: String = get(flags, "workload", "chat-1m".to_string())?;
    let workload = TraceWorkload::by_name(&workload_name)
        .ok_or(format!("unknown workload '{workload_name}'"))?;
    let requests: usize = get(flags, "requests", 200)?;
    let qps: f64 = get(flags, "qps", 1.0)?;
    let seed: u64 = get(flags, "seed", 42)?;
    let arrivals = if qps > 0.0 {
        ArrivalProcess::Poisson { qps }
    } else {
        ArrivalProcess::Static
    };
    let mut rng = SimRng::new(seed);
    Ok(workload.generate(requests, &arrivals, &mut rng))
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let flags = parse_flags(args)?;
        let config = build_config(&flags)?;
        let trace = build_trace(&flags)?;
        let seed: u64 = get(&flags, "seed", 42)?;
        eprintln!(
            "simulating {} on {} requests...",
            config.label(),
            trace.len()
        );
        let est = onboard(
            &config.model,
            &config.parallelism,
            &config.sku,
            EstimatorKind::default(),
        );
        let report = ClusterSimulator::new(
            config,
            trace,
            RuntimeSource::Estimator((*est).clone()),
            seed,
        )
        .run();
        if flags.contains_key("json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        } else {
            println!(
                "completed      : {}/{}",
                report.completed, report.num_requests
            );
            println!("makespan       : {:.1} s", report.makespan_secs);
            println!("throughput     : {:.2} QPS", report.throughput_qps);
            println!(
                "TTFT p50/p90   : {:.0} / {:.0} ms",
                report.ttft.p50 * 1e3,
                report.ttft.p90 * 1e3
            );
            println!(
                "TBT p50/p99    : {:.0} / {:.0} ms",
                report.tbt.p50 * 1e3,
                report.tbt.p99 * 1e3
            );
            println!(
                "MFU / MBU      : {:.1}% / {:.1}%",
                report.mfu * 100.0,
                report.mbu * 100.0
            );
            println!("KV utilization : {:.1}%", report.kv_utilization * 100.0);
            println!(
                "energy         : {:.3} kWh ({:.1} Wh/request)",
                report.energy_kwh, report.energy_wh_per_request
            );
            println!("top operators  :");
            for (op, secs) in report.operator_time_breakdown.iter().take(5) {
                println!("  {op:<16} {secs:.2} s");
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_search(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let flags = parse_flags(args)?;
        let model_name: String = get(&flags, "model", "llama2-7b".to_string())?;
        let model =
            ModelSpec::by_name(&model_name).ok_or(format!("unknown model '{model_name}'"))?;
        let trace = build_trace(&flags)?;
        let max_gpus: u32 = get(&flags, "max-gpus", 16)?;
        let mut space = if flags.contains_key("full") {
            SearchSpace::paper()
        } else {
            SearchSpace::reduced()
        };
        space.max_gpus = max_gpus;
        let configs = space.enumerate(&model);
        eprintln!(
            "searching {} configurations for {} on {}...",
            configs.len(),
            model.name,
            trace.workload_name
        );
        let params = CapacityParams::default();
        let outcome = run_search(&configs, &trace, &params, EstimatorKind::default());
        let slo = SloConstraints::default();
        println!(
            "{:<62} {:>9} {:>9} {:>9}",
            "config", "QPS/$", "TTFT p90", "TBT p99"
        );
        let mut ranked: Vec<&ConfigEvaluation> = outcome.evaluations.iter().collect();
        ranked.sort_by(|a, b| b.qps_per_dollar.partial_cmp(&a.qps_per_dollar).unwrap());
        for e in ranked.iter().take(10) {
            println!(
                "{:<62} {:>9.4} {:>7.2} s {:>7.0} ms",
                e.label,
                e.qps_per_dollar,
                e.ttft_p90,
                e.tbt_p99 * 1e3
            );
        }
        match outcome.best(&slo) {
            Some(best) => println!(
                "\nbest under SLOs: {} ({:.4} QPS/$)",
                best.label, best.qps_per_dollar
            ),
            None => println!("\nno SLO-compliant configuration found"),
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
